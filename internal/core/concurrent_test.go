package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/rel"
)

// This file holds the concurrency stress tests of the per-query execution
// context refactor — the acceptance criterion of the Ctx plumbing: two
// concurrent queries with Parallelism 1 and 8 produce bitwise-identical
// results to their serial runs under -race, and Stats.Workers reports
// each query's own budget with no shared-global cross-talk. CI runs this
// file in a dedicated -race step with GOMAXPROCS=4.

// mixedRel builds an n-row relation with a shuffled unique int key (so
// sortArg really sorts, in parallel above the cutoff) and w float
// application columns.
func mixedRel(name string, n, w int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	schema := rel.Schema{{Name: "k", Type: bat.Int}}
	cols := []*bat.BAT{bat.FromInts(keys)}
	for c := 0; c < w; c++ {
		f := make([]float64, n)
		for i := range f {
			f[i] = rng.NormFloat64() * 10
		}
		schema = append(schema, rel.Attr{Name: string(rune('a' + c)), Type: bat.Float})
		cols = append(cols, bat.FromFloats(f))
	}
	return rel.MustNew(name, schema, cols)
}

// relsBitwiseEqual compares two relations exactly: schema, row count, and
// cell-for-cell equality with float payloads compared by bit pattern.
func relsBitwiseEqual(a, b *rel.Relation) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for k := range a.Schema {
		if a.Schema[k] != b.Schema[k] {
			return false
		}
	}
	for k, ca := range a.Cols {
		cb := b.Cols[k]
		for i := 0; i < a.NumRows(); i++ {
			va, vb := ca.Get(i), cb.Get(i)
			if va.Type != vb.Type {
				return false
			}
			switch va.Type {
			case bat.Float:
				if math.Float64bits(va.F) != math.Float64bits(vb.F) {
					return false
				}
			case bat.Int:
				if va.I != vb.I {
					return false
				}
			default:
				if va.S != vb.S {
					return false
				}
			}
		}
	}
	return true
}

// mixedQuery runs one representative query pipeline under the given
// options: a BAT-path elementwise add (parallel kernels + parallel sort of
// the shuffled key) followed by a dense-path cross product (toMatrix
// copy-in, SYRK, copy-out) over its result. It returns an error instead
// of failing the test so goroutines other than the test's own can call it
// (FailNow must not run off the test goroutine).
func mixedQuery(r, s *rel.Relation, opts *Options) (*rel.Relation, error) {
	sum, err := Add(r, []string{"k"}, s, []string{"k2"}, opts)
	if err != nil {
		return nil, err
	}
	return Cpd(sum, []string{"k"}, sum, []string{"k"}, opts)
}

// TestConcurrentMixedBudgetQueries is the -race stress test of the
// refactor's acceptance criterion. Serial baselines are computed first;
// then one goroutine per budget in {1, 2, 8} runs the same query stream
// concurrently, each under its own per-invocation context, and every
// result must be bitwise-identical to the baseline while Stats.Workers
// reports that goroutine's budget.
func TestConcurrentMixedBudgetQueries(t *testing.T) {
	n := bat.SerialCutoff + 257 // above the cutoff: kernels and sort fan out
	r := mixedRel("r", n, 3, 1)
	s, err := mixedRel("s", n, 3, 2).Rename(map[string]string{"k": "k2"})
	if err != nil {
		t.Fatal(err)
	}

	want, err := mixedQuery(r, s, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 4
	var wg sync.WaitGroup
	for _, budget := range []int{1, 2, 8} {
		wg.Add(1)
		go func(budget int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				stats := &Stats{}
				got, err := mixedQuery(r, s, &Options{Parallelism: budget, Stats: stats})
				if err != nil {
					t.Errorf("budget %d: %v", budget, err)
					return
				}
				if stats.Workers != budget {
					t.Errorf("budget %d: Stats.Workers = %d", budget, stats.Workers)
					return
				}
				if budget > 1 && stats.ParallelSections == 0 {
					t.Errorf("budget %d recorded no parallel sections", budget)
					return
				}
				if !relsBitwiseEqual(got, want) {
					t.Errorf("budget %d: result differs from serial baseline", budget)
					return
				}
			}
		}(budget)
	}
	wg.Wait()
}

// TestZeroParallelismFallsBackToDefault is the regression test that an
// absent budget (Options.Parallelism == 0, or nil Options) resolves to
// the process default rather than panicking or forcing serial execution.
func TestZeroParallelismFallsBackToDefault(t *testing.T) {
	prev := bat.SetParallelism(5)
	defer bat.SetParallelism(prev)

	r := mixedRel("r", 64, 2, 3)
	stats := &Stats{}
	if _, err := Tra(r, []string{"k"}, &Options{Stats: stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 5 {
		t.Fatalf("Stats.Workers = %d, want the default budget 5", stats.Workers)
	}
	// nil Options must keep working end to end.
	if _, err := Tra(r, []string{"k"}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStatsWorkersNoCrossTalk hammers two option sets with different
// budgets from two goroutines and asserts every invocation reports its
// own budget — the exact failure mode of the former process-wide
// SetParallelism override under concurrency.
func TestStatsWorkersNoCrossTalk(t *testing.T) {
	r := mixedRel("r", 512, 2, 4)
	var wg sync.WaitGroup
	for _, budget := range []int{1, 8} {
		wg.Add(1)
		go func(budget int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stats := &Stats{}
				if _, err := Tra(r, []string{"k"}, &Options{Parallelism: budget, Stats: stats}); err != nil {
					t.Errorf("tra: %v", err)
					return
				}
				if stats.Workers != budget {
					t.Errorf("invocation with budget %d saw Workers=%d", budget, stats.Workers)
					return
				}
			}
		}(budget)
	}
	wg.Wait()
}
