package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// randRelation builds a relation with one int key column K (shuffled
// distinct values) and k float application columns c01..ck whose names
// sort alphabetically in schema order.
func randRelation(rng *rand.Rand, name string, n, k int) *rel.Relation {
	schema := rel.Schema{{Name: "K" + name, Type: bat.Int}}
	for j := 0; j < k; j++ {
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("%sc%02d", name, j), Type: bat.Float})
	}
	b := rel.NewBuilder(name, schema)
	keys := rng.Perm(n)
	for i := 0; i < n; i++ {
		vals := []bat.Value{bat.IntValue(int64(keys[i]))}
		for j := 0; j < k; j++ {
			vals = append(vals, bat.FloatValue(rng.NormFloat64()))
		}
		b.MustAdd(vals...)
	}
	return b.Relation()
}

// spdRelation returns a relation whose application part is symmetric
// positive definite when ordered by K.
func spdRelation(rng *rand.Rand, n int) *rel.Relation {
	raw := matrix.New(n, n)
	for i := range raw.Data {
		raw.Data[i] = rng.NormFloat64()
	}
	a := linalg.CrossProduct(nil, raw, raw)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	schema := rel.Schema{{Name: "K", Type: bat.Int}}
	for j := 0; j < n; j++ {
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("c%02d", j), Type: bat.Float})
	}
	b := rel.NewBuilder("spd", schema)
	for i := 0; i < n; i++ {
		vals := []bat.Value{bat.IntValue(int64(i))}
		for j := 0; j < n; j++ {
			vals = append(vals, bat.FloatValue(a.At(i, j)))
		}
		b.MustAdd(vals...)
	}
	return b.Relation()
}

// reduce implements Definition 6.1: r →_U m. It orders the relation by
// the named attributes and returns the remaining columns as a matrix.
func reduce(t *testing.T, v *rel.Relation, order []string) *matrix.Matrix {
	t.Helper()
	specs := make([]rel.OrderSpec, len(order))
	for k, a := range order {
		specs[k] = rel.OrderSpec{Attr: a}
	}
	sorted, err := v.Sort(nil, specs...)
	if err != nil {
		t.Fatalf("reduce sort: %v", err)
	}
	inOrder := make(map[string]bool)
	for _, a := range order {
		inOrder[a] = true
	}
	var cols [][]float64
	for k, attr := range sorted.Schema {
		if inOrder[attr.Name] {
			continue
		}
		f, err := sorted.Cols[k].Floats()
		if err != nil {
			t.Fatalf("reduce: %v", err)
		}
		cols = append(cols, f)
	}
	return matrix.FromColumns(cols)
}

// inputMatrix is µ_Ū(r) for a relation whose key is its first attribute.
func inputMatrix(t *testing.T, r *rel.Relation) *matrix.Matrix {
	t.Helper()
	return reduce(t, r, []string{r.Schema[0].Name})
}

// TestMatrixConsistencyUnary verifies Theorem 6.8 for every unary
// operation: op_U(r) is reducible to OP(µ_Ū(r)).
func TestMatrixConsistencyUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tall := randRelation(rng, "r", 7, 3) // 7x3
	square := spdRelation(rng, 5)        // SPD 5x5 (inv, evc, evl, chf, det)
	tallM := inputMatrix(t, tall)
	squareM := inputMatrix(t, square)

	cases := []struct {
		op    Op
		rel   *rel.Relation
		base  func() *matrix.Matrix
		order []string // order schema U' of the result for reduction
	}{
		{OpTRA, tall, func() *matrix.Matrix { return tallM.T() }, []string{"C"}},
		{OpQQR, tall, func() *matrix.Matrix { m, _ := linalg.QQR(nil, tallM); return m }, []string{"Kr"}},
		{OpRQR, tall, func() *matrix.Matrix { m, _ := linalg.RQR(nil, tallM); return m }, []string{"C"}},
		{OpDSV, tall, func() *matrix.Matrix {
			sv, _ := linalg.SingularValues(nil, tallM)
			d := make([]float64, tallM.Cols)
			copy(d, sv)
			return matrix.Diag(d)
		}, []string{"C"}},
		{OpVSV, tall, func() *matrix.Matrix { d, _ := linalg.NewSVD(nil, tallM); return d.FullV() }, []string{"C"}},
		{OpUSV, tall, func() *matrix.Matrix { d, _ := linalg.NewSVD(nil, tallM); return d.FullU() }, []string{"Kr"}},
		{OpRNK, tall, func() *matrix.Matrix {
			r, _ := linalg.Rank(nil, tallM)
			return matrix.FromRows([][]float64{{float64(r)}})
		}, []string{"C"}},
		{OpINV, square, func() *matrix.Matrix { m, _ := linalg.Inverse(squareM); return m }, []string{"K"}},
		{OpEVC, square, func() *matrix.Matrix { m, _ := linalg.Eigenvectors(squareM); return m }, []string{"K"}},
		{OpEVL, square, func() *matrix.Matrix {
			vals, _ := linalg.Eigenvalues(squareM)
			out := matrix.New(len(vals), 1)
			for i, v := range vals {
				out.Set(i, 0, v)
			}
			return out
		}, []string{"K"}},
		{OpCHF, square, func() *matrix.Matrix { m, _ := linalg.Cholesky(squareM); return m }, []string{"K"}},
		{OpDET, square, func() *matrix.Matrix {
			d, _ := linalg.Det(squareM)
			return matrix.FromRows([][]float64{{d}})
		}, []string{"C"}},
	}
	for _, c := range cases {
		order := []string{c.rel.Schema[0].Name}
		v, err := Unary(c.op, c.rel, order, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		got := reduce(t, v, c.order)
		want := c.base()
		if !matrix.ApproxEqual(got, want, 1e-9) {
			t.Errorf("%s: result relation is not reducible to the base result\ngot  %v\nwant %v", c.op, got, want)
		}
	}
}

// TestMatrixConsistencyBinary verifies Theorem 6.8 for the binary
// operations.
func TestMatrixConsistencyBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	r := randRelation(rng, "r", 6, 3)
	s := randRelation(rng, "s", 6, 3)
	mr, ms := inputMatrix(t, r), inputMatrix(t, s)

	// add/sub/emu: reducible via U (r's order schema).
	elementwise := []struct {
		op   Op
		want *matrix.Matrix
	}{
		{OpADD, matrix.Add(mr, ms)},
		{OpSUB, matrix.Sub(mr, ms)},
		{OpEMU, matrix.EMU(mr, ms)},
	}
	for _, c := range elementwise {
		v, err := Binary(c.op, r, []string{"Kr"}, s, []string{"Ks"}, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		// Reduce by r's order column; drop s's order column too (it is
		// contextual, not part of the base result).
		dropped, err := v.Drop("Ks")
		if err != nil {
			t.Fatal(err)
		}
		got := reduce(t, dropped, []string{"Kr"})
		if !matrix.ApproxEqual(got, c.want, 1e-9) {
			t.Errorf("%s: not reducible to base result", c.op)
		}
	}

	// mmu: r(6x3) × s'(3x2).
	s2 := randRelation(rng, "q", 3, 2)
	msq := inputMatrix(t, s2)
	v, err := Binary(OpMMU, r, []string{"Kr"}, s2, []string{"Kq"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(reduce(t, v, []string{"Kr"}), linalg.MatMul(nil, mr, msq), 1e-9) {
		t.Error("mmu: not reducible to base result")
	}

	// cpd.
	v, err = Binary(OpCPD, r, []string{"Kr"}, s, []string{"Ks"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(reduce(t, v, []string{"C"}), linalg.CrossProduct(nil, mr, ms), 1e-9) {
		t.Error("cpd: not reducible to base result")
	}

	// opd.
	v, err = Binary(OpOPD, r, []string{"Kr"}, s, []string{"Ks"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Column names are ▽Ks = "0".."5"; they sort as strings, so reduce by
	// Kr and compare against OPD with s columns permuted to string order.
	got := reduce(t, v, []string{"Kr"})
	want := linalg.OuterProduct(nil, mr, ms)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("opd shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if !matrix.ApproxEqual(got, want, 1e-9) {
		t.Error("opd: not reducible to base result")
	}

	// sol: single-column right-hand side.
	rhs := randRelation(rng, "b", 6, 1)
	mb := inputMatrix(t, rhs)
	v, err = Binary(OpSOL, r, []string{"Kr"}, rhs, []string{"Kb"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, err := linalg.Solve(nil, mr, mb.Column(0))
	if err != nil {
		t.Fatal(err)
	}
	wantX := matrix.New(len(x), 1)
	for i, xv := range x {
		wantX.Set(i, 0, xv)
	}
	if !matrix.ApproxEqual(reduce(t, v, []string{"C"}), wantX, 1e-9) {
		t.Error("sol: not reducible to base result")
	}
}

// TestOriginsDefinition verifies Definition 6.6 on representative shapes:
// the row origin equals the contextual values prescribed by Table 3 and
// the column origin equals the prescribed schema part.
func TestOriginsDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	r := randRelation(rng, "r", 5, 3)

	// Shape (r1,c1): qqr — row origin r.U sorted, column origin Ū.
	v, err := Qqr(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if v.Value(i, 0).I != int64(i) {
			t.Errorf("qqr row origin %d = %v", i, v.Value(i, 0))
		}
	}
	wantCols := []string{"Kr", "rc00", "rc01", "rc02"}
	for k, w := range wantCols {
		if v.Schema[k].Name != w {
			t.Errorf("qqr column origin %d = %s, want %s", k, v.Schema[k].Name, w)
		}
	}

	// Shape (c1,c1): rqr — row origin ∆Ū (C column), column origin Ū.
	v, err = Rqr(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantC := []string{"rc00", "rc01", "rc02"}
	for i, w := range wantC {
		if v.Value(i, 0).S != w {
			t.Errorf("rqr row origin %d = %v, want %s", i, v.Value(i, 0), w)
		}
	}

	// Shape (r1,r1): usv — column origin ▽U (sorted key values as names).
	v, err = Usv(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("%d", i)
		if v.Schema[i+1].Name != want {
			t.Errorf("usv column origin %d = %s, want %s", i, v.Schema[i+1].Name, want)
		}
	}

	// Shape (1,1): rnk — row origin is the relation name, column origin op.
	v, err = Rnk(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value(0, 0).S != "r" || v.Schema[1].Name != "rnk" {
		t.Errorf("rnk origins = %v, %s", v.Value(0, 0), v.Schema[1].Name)
	}
}

// TestOriginsConnectValues follows Example 6.5: a result value and its
// argument value share origins (row key + attribute name).
func TestOriginsConnectValues(t *testing.T) {
	r := weather()
	pred, _ := r.StringPred("T", func(s string) bool { return s > "6am" })
	sel := r.Select(nil, pred)
	v, err := Inv(sel, []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Origin (7am, H) exists in both argument and result.
	argVal := math.NaN()
	for i := 0; i < sel.NumRows(); i++ {
		if sel.Value(i, 0).S == "7am" {
			argVal = sel.Value(i, 1).F
		}
	}
	resVal := math.NaN()
	for i := 0; i < v.NumRows(); i++ {
		if v.Value(i, 0).S == "7am" {
			resVal = v.Value(i, 1).F
		}
	}
	if math.IsNaN(argVal) || math.IsNaN(resVal) {
		t.Fatal("origin (7am,H) missing")
	}
	if argVal != 6 {
		t.Errorf("argument value at (7am,H) = %v", argVal)
	}
	if !approx(resVal, -5.0/26, 1e-12) {
		t.Errorf("result value at (7am,H) = %v", resVal)
	}
}

// TestShapeTable verifies the ShapeOf table against paper Table 1/2.
func TestShapeTable(t *testing.T) {
	want := map[Op]ShapeType{
		OpUSV: {DimR1, DimR1},
		OpOPD: {DimR1, DimR2},
		OpINV: {DimR1, DimC1},
		OpEVC: {DimR1, DimC1},
		OpCHF: {DimR1, DimC1},
		OpQQR: {DimR1, DimC1},
		OpMMU: {DimR1, DimC2},
		OpEVL: {DimR1, DimOne},
		OpTRA: {DimC1, DimR1},
		OpRQR: {DimC1, DimC1},
		OpDSV: {DimC1, DimC1},
		OpVSV: {DimC1, DimC1}, // paper erratum: Table 1 says (r1,1)
		OpCPD: {DimC1, DimC2},
		OpSOL: {DimC1, DimC2},
		OpEMU: {DimRStar, DimCStar},
		OpADD: {DimRStar, DimCStar},
		OpSUB: {DimRStar, DimCStar},
		OpDET: {DimOne, DimOne},
		OpRNK: {DimOne, DimOne},
	}
	for op, st := range want {
		if ShapeOf(op) != st {
			t.Errorf("ShapeOf(%s) = %v, want %v", op, ShapeOf(op), st)
		}
	}
	if len(Ops) != 19 {
		t.Errorf("Ops lists %d operations, want 19", len(Ops))
	}
	for _, op := range Ops {
		if _, err := ParseOp(string(op)); err != nil {
			t.Errorf("ParseOp(%s): %v", op, err)
		}
	}
}

// TestClosure: every operation returns a relation usable as input to
// further relational and RMA operations (the algebra is closed).
func TestClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	r := spdRelation(rng, 4)
	inv, err := Inv(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Relational op on RMA output.
	pred, err := inv.FloatPred("c00", func(float64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	sel := inv.Select(nil, pred)
	// RMA op on relational output of RMA output.
	back, err := Inv(sel, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// inv(inv(A)) = A.
	got := reduce(t, back, []string{"K"})
	want := inputMatrix(t, r)
	if !matrix.ApproxEqual(got, want, 1e-6) {
		t.Error("inv∘inv != id — closure chain broke values")
	}
}
