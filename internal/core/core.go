// Package core implements the relational matrix algebra (RMA) — the
// primary contribution of "A Relational Matrix Algebra and its
// Implementation in a Column Store" (SIGMOD 2020).
//
// RMA extends the relational model with nineteen relational matrix
// operations (emu, mmu, opd, cpd, add, sub, tra, sol, inv, evc, evl, qqr,
// rqr, dsv, usv, vsv, det, rnk, chf). Each operation takes one or two
// relations together with an order schema per argument. The order schema
// U ⊆ R must form a key and imposes the row order for the matrix
// operation; the remaining attributes Ū form the application schema and
// must be numeric. The operation computes the matrix operation over the
// application part ordered by U (the base result) and returns a relation
// that combines the base result with contextual information — row and
// column origins — morphed from the inputs according to the operation's
// shape type (paper Tables 1-3). The algebra is closed: relations in,
// relations out.
//
// Execution follows the paper's Algorithm 1: split the argument's BATs
// into order and application lists, sort by the order schema, morph the
// contextual information, evaluate the matrix kernel, and merge. Two
// independent execution knobs reproduce the paper's ablations:
//
//   - Policy selects between the no-copy column-at-a-time kernels of
//     internal/batlin (RMA+BAT) and the contiguous dense kernels of
//     internal/linalg reached by copying the application part out and the
//     base result back (RMA+MKL). PolicyAuto mirrors the paper: the
//     elementwise family runs on BATs, everything else is delegated.
//   - SortMode enables the Section 8.1 optimizations: operations whose
//     base result is invariant or equivariant under row permutation skip
//     sorting entirely, and binary elementwise operations sort only the
//     second argument relative to the first.
package core
