package exec

import (
	"math"
	"sync"
	"testing"
)

// TestNilAndZeroCtxFallBackToDefault is the regression test for the
// documented budget fallback: a nil context, the zero value, and a
// context built with a non-positive budget all resolve Workers against
// the process default — and track later changes to it.
func TestNilAndZeroCtxFallBackToDefault(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)

	var nilCtx *Ctx
	if got := nilCtx.Workers(); got != 3 {
		t.Errorf("nil ctx Workers = %d, want 3", got)
	}
	if got := (&Ctx{}).Workers(); got != 3 {
		t.Errorf("zero ctx Workers = %d, want 3", got)
	}
	if got := New(0).Workers(); got != 3 {
		t.Errorf("New(0).Workers = %d, want 3", got)
	}
	if got := New(-5).Workers(); got != 3 {
		t.Errorf("New(-5).Workers = %d, want 3", got)
	}
	// Dynamic: the unbudgeted context follows the default knob.
	SetDefaultWorkers(7)
	if got := New(0).Workers(); got != 7 {
		t.Errorf("New(0).Workers after SetDefaultWorkers(7) = %d, want 7", got)
	}
	// Fixed budgets are immune to the knob.
	c := New(2)
	SetDefaultWorkers(5)
	if got := c.Workers(); got != 2 {
		t.Errorf("New(2).Workers = %d, want 2", got)
	}
	// Nil-safe arena and stats accessors.
	if nilCtx.Arena() != Shared() {
		t.Error("nil ctx Arena() is not the shared arena")
	}
	if nilCtx.Stats() != nil {
		t.Error("nil ctx Stats() is not nil")
	}
}

// TestConcurrentBudgetsAreIsolated asserts the property the refactor
// exists for: two contexts with different budgets running simultaneously
// each observe their own worker count, with no cross-talk through a
// process-wide knob.
func TestConcurrentBudgetsAreIsolated(t *testing.T) {
	budgets := []int{1, 2, 8}
	const rounds = 200
	var wg sync.WaitGroup
	for _, b := range budgets {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			c := New(b)
			for r := 0; r < rounds; r++ {
				if got := c.Workers(); got != b {
					t.Errorf("ctx budget %d observed Workers = %d", b, got)
					return
				}
				total := 0
				mu := sync.Mutex{}
				c.ParallelFor(1000, 10, func(lo, hi int) {
					mu.Lock()
					total += hi - lo
					mu.Unlock()
				})
				if total != 1000 {
					t.Errorf("budget %d: ParallelFor covered %d of 1000", b, total)
					return
				}
			}
		}(b)
	}
	wg.Wait()
}

// TestReduceBitwiseStableAcrossBudgets asserts the fixed-chunk reduction
// contract: identical float bits at any budget, including right at the
// chunk boundary.
func TestReduceBitwiseStableAcrossBudgets(t *testing.T) {
	for _, n := range []int{1, SerialCutoff - 1, SerialCutoff, SerialCutoff + 1, 3*SerialCutoff + 17} {
		f := make([]float64, n)
		for k := range f {
			f[k] = float64((k*7919)%1000) / 3.0
		}
		partial := func(lo, hi int) float64 {
			var s float64
			for k := lo; k < hi; k++ {
				s += f[k]
			}
			return s
		}
		want := New(1).Reduce(n, partial)
		for _, b := range []int{2, 8} {
			got := New(b).Reduce(n, partial)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d budget=%d: Reduce %v != serial %v", n, b, got, want)
			}
		}
	}
}

// TestStatsSink checks that the context's stats record the resolved
// budget and count parallel fan-outs, and that serial work stays
// uncounted.
func TestStatsSink(t *testing.T) {
	st := &Stats{}
	c := NewCtx(4, nil, st)
	if st.Workers != 4 {
		t.Fatalf("Stats.Workers = %d, want 4", st.Workers)
	}
	c.ParallelFor(100, 1000, func(lo, hi int) {}) // under minWork: serial
	if got := st.Sections.Load(); got != 0 {
		t.Fatalf("serial ParallelFor counted %d sections", got)
	}
	c.ParallelFor(100, 10, func(lo, hi int) {})
	if got := st.Sections.Load(); got != 1 {
		t.Fatalf("Sections = %d, want 1", got)
	}
	if g := st.Goroutines.Load(); g < 2 || g > 4 {
		t.Fatalf("Goroutines = %d, want 2..4", g)
	}
}

// TestParallelRunsEmptyAndTiny is the regression test for the
// ParallelRuns divide-by-zero: n == 0 used to yield runs == 0 and panic
// on size = (n+runs-1)/runs. An empty range must decompose into zero
// runs with a positive size; a single element into one run of one.
func TestParallelRunsEmptyAndTiny(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := New(workers)
		runs, size := c.ParallelRuns(0)
		if runs != 0 || size < 1 {
			t.Fatalf("workers=%d: ParallelRuns(0) = (%d, %d), want (0, >=1)", workers, runs, size)
		}
		runs, size = c.ParallelRuns(1)
		if runs != 1 || size != 1 {
			t.Fatalf("workers=%d: ParallelRuns(1) = (%d, %d), want (1, 1)", workers, runs, size)
		}
		// The decomposition must cover [0, n) exactly for a spread of n.
		for _, n := range []int{2, SerialCutoff, SerialCutoff + 1, 5 * SerialCutoff} {
			runs, size = c.ParallelRuns(n)
			if runs < 1 || size < 1 || (runs-1)*size >= n || runs*size < n {
				t.Fatalf("workers=%d n=%d: ParallelRuns = (%d, %d) does not tile the range",
					workers, n, runs, size)
			}
		}
	}
}

// TestParallelForPanicReachesCaller checks that a panic inside a worker
// goroutine — a memory-budget overrun in a kernel body, most
// importantly — unwinds the calling goroutine instead of killing the
// process from an unrecoverable worker.
func TestParallelForPanicReachesCaller(t *testing.T) {
	c := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the worker's panic value", r)
		}
	}()
	c.ParallelFor(4*SerialCutoff, 1, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("ParallelFor returned past a worker panic")
}

// TestNewCtxPinsDynamicBudgetForStats is the regression test for the
// stats-staleness bug: an instrumented context built with a dynamic
// budget (workers <= 0) recorded DefaultWorkers() into Stats.Workers at
// construction but kept resolving the live default at run time, so a
// default change between construction and execution made the recorded
// value a lie. The context now pins the budget at construction:
// execution and Stats.Workers always agree.
func TestNewCtxPinsDynamicBudgetForStats(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)

	st := &Stats{}
	c := NewCtx(0, nil, st)
	SetDefaultWorkers(5)
	if got := c.Workers(); got != 3 {
		t.Fatalf("instrumented dynamic ctx resolves %d workers, want the pinned 3", got)
	}
	if st.Workers != 3 {
		t.Fatalf("Stats.Workers = %d, want 3", st.Workers)
	}
	// Uninstrumented dynamic contexts still follow the default.
	if got := NewCtx(0, nil, nil).Workers(); got != 5 {
		t.Fatalf("uninstrumented dynamic ctx = %d workers, want 5", got)
	}
}

// TestArenaClasses checks the size-class mapping and the round-trip
// behavior of all four element domains, including the string-clearing
// contract.
func TestArenaClasses(t *testing.T) {
	a := NewArena()
	f := a.Floats(100)
	if len(f) != 100 || cap(f) != 128 {
		t.Fatalf("Floats(100): len=%d cap=%d, want 100/128", len(f), cap(f))
	}
	for k := range f {
		f[k] = 42
	}
	a.FreeFloats(f)
	z := a.FloatsZero(100)
	for k, v := range z {
		if v != 0 {
			t.Fatalf("FloatsZero: element %d = %v after recycling a dirty buffer", k, v)
		}
	}
	a.FreeFloats(z)

	got := a.Floats(0)
	if len(got) != 0 {
		t.Fatalf("Floats(0): len=%d", len(got))
	}
	a.FreeFloats(got)
	a.FreeFloats(make([]float64, 100)) // cap 100 is no class size: dropped, not pooled
	huge := 1<<maxPoolShift + 1
	if c := classFor(huge); c != -1 {
		t.Fatalf("classFor(%d) = %d, want -1", huge, c)
	}
	if c := capClass(100); c != -1 {
		t.Fatalf("capClass(100) = %d, want -1", c)
	}

	idx := a.Ints(1000)
	if len(idx) != 1000 || cap(idx) != 1024 {
		t.Fatalf("Ints(1000): len=%d cap=%d", len(idx), cap(idx))
	}
	a.FreeInts(idx)

	xs := a.Int64s(70)
	if len(xs) != 70 || cap(xs) != 128 {
		t.Fatalf("Int64s(70): len=%d cap=%d", len(xs), cap(xs))
	}
	a.FreeInt64s(xs)

	ss := a.Strings(64)
	for k := range ss {
		ss[k] = "pinned"
	}
	a.FreeStrings(ss)
	ss2 := a.Strings(64)
	for k, v := range ss2 {
		if v != "" {
			t.Fatalf("Strings after free: element %d = %q, want cleared", k, v)
		}
	}
	a.FreeStrings(ss2)

	// A nil arena delegates to the shared one instead of panicking.
	var nilArena *Arena
	nilArena.FreeFloats(nilArena.Floats(64))
}
