package exec

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Spill is the per-statement spill manager: it owns a scratch
// directory for on-disk staging (created lazily, removed by Cleanup)
// and the policy deciding when an operator should degrade to disk.
// The big memory consumers — the hash-join build, the grouped
// aggregation's partial tables, the sort's merge runs — ask
// Ctx.ShouldSpill with their estimated in-memory footprint and take
// the out-of-core path when it answers true. Spilling never changes
// results: every spill path reproduces the in-memory operator's
// canonical output order bit for bit, so the decision only trades
// memory for disk traffic.
type Spill struct {
	base      string // parent directory for the scratch dir
	threshold int64  // explicit byte threshold; 0 derives from the tenant budget
	force     bool   // spill on any eligible estimate (the reactive retry path)

	mu  sync.Mutex
	dir string // lazily created scratch dir
	seq atomic.Int64

	// Counters for the statement's spill activity, mirrored into the
	// owning Stats by Ctx.NoteSpill.
	bytes  atomic.Int64
	parts  atomic.Int64
	events atomic.Int64
}

// SpillStats is a snapshot of one statement's spill activity.
type SpillStats struct {
	SpilledBytes int64 `json:"spilled_bytes"`
	Partitions   int64 `json:"partitions"`
	Events       int64 `json:"events"`
}

// NewSpill returns a spill manager staging under base (empty means the
// OS temp dir). threshold is the in-memory footprint in bytes above
// which consumers spill; 0 derives half the tenant's budget at
// decision time (and disables spilling for unbudgeted tenants).
func NewSpill(base string, threshold int64) *Spill {
	return &Spill{base: base, threshold: threshold}
}

// Forced returns a copy of the manager that spills on every eligible
// estimate — the reactive retry path after a budget overrun, where the
// plan must shed every spillable structure to fit.
func (s *Spill) Forced() *Spill {
	if s == nil {
		return nil
	}
	return &Spill{base: s.base, threshold: s.threshold, force: true}
}

// IsForced reports whether the manager spills on every eligible
// estimate — the reactive retry configuration. Nil-safe.
func (s *Spill) IsForced() bool { return s != nil && s.force }

// Dir returns the statement's scratch directory, creating it on first
// use.
func (s *Spill) Dir() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir != "" {
		return s.dir, nil
	}
	base := s.base
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "rmaspill-*")
	if err != nil {
		return "", fmt.Errorf("exec: spill dir: %w", err)
	}
	s.dir = dir
	return dir, nil
}

// Path returns a fresh file path inside the scratch directory, unique
// within this manager.
func (s *Spill) Path(label string) (string, error) {
	dir, err := s.Dir()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s/%s-%d.seg", dir, label, s.seq.Add(1)), nil
}

// Cleanup removes the scratch directory and everything staged in it.
// Idempotent; safe on a manager that never spilled.
func (s *Spill) Cleanup() {
	if s == nil {
		return
	}
	s.mu.Lock()
	dir := s.dir
	s.dir = ""
	s.mu.Unlock()
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// Stats snapshots the manager's counters. Nil-safe.
func (s *Spill) Stats() SpillStats {
	if s == nil {
		return SpillStats{}
	}
	return SpillStats{
		SpilledBytes: s.bytes.Load(),
		Partitions:   s.parts.Load(),
		Events:       s.events.Load(),
	}
}

// WithSpill returns a context identical to c but carrying the spill
// manager (nil detaches). The arena, workers, and stats are shared
// with c.
func (c *Ctx) WithSpill(sp *Spill) *Ctx {
	base := c
	if base == nil {
		base = Default()
	}
	nc := *base
	nc.spill = sp
	return &nc
}

// Spill returns the context's spill manager, or nil when out-of-core
// execution is disabled. Nil-safe.
func (c *Ctx) Spill() *Spill {
	if c == nil {
		return nil
	}
	return c.spill
}

// ShouldSpill reports whether an operator expecting to hold roughly
// est bytes in memory should take its out-of-core path. False without
// a spill manager. With one, a forced manager always spills; otherwise
// the estimate is compared against the explicit threshold or, when
// none is set, half the tenant's byte budget (unbudgeted tenants never
// auto-spill). The answer never affects results, only the memory/disk
// trade.
func (c *Ctx) ShouldSpill(est int64) bool {
	sp := c.Spill()
	if sp == nil {
		return false
	}
	if sp.force {
		return true
	}
	th := sp.threshold
	if th <= 0 {
		t := c.Arena().Tenant()
		if t == nil || t.Budget() <= 0 {
			return false
		}
		th = t.Budget() / 2
	}
	return est > th
}

// NoteSpill records bytes written to disk and partitions created by
// one spill event, on both the context's Stats and the spill manager.
// Nil-safe in every direction.
func (c *Ctx) NoteSpill(bytes, partitions int64) {
	if s := c.Stats(); s != nil {
		s.SpilledBytes.Add(bytes)
		s.SpilledPartitions.Add(partitions)
	}
	if sp := c.Spill(); sp != nil {
		sp.bytes.Add(bytes)
		sp.parts.Add(partitions)
		sp.events.Add(1)
	}
}
