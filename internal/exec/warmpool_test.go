package exec

import "testing"

// TestTenantWarmPoolReuse checks that a tenant's arenas share one warm
// pool set: a buffer freed by one statement's arena is served back — as
// a pool hit — to the next statement's fresh arena, so budgeted tenants
// no longer pay the cold-pool cost on every query.
func TestTenantWarmPoolReuse(t *testing.T) {
	g := NewGovernor(0, 0)
	tn := g.Tenant("warm", 0)

	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so the cross-arena hit is asserted with a bounded retry.
	hit := false
	for i := 0; i < 64 && !hit; i++ {
		a1 := tn.NewArena()
		f := a1.Floats(1000)
		a1.FreeFloats(f)
		a1.Close()

		a2 := tn.NewArena()
		before := tn.Stats().Floats.PoolHits
		f2 := a2.Floats(1000)
		hit = tn.Stats().Floats.PoolHits > before
		a2.FreeFloats(f2)
		a2.Close()
	}
	if !hit {
		t.Fatal("buffer freed in one statement arena never warmed the tenant's next arena")
	}
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live after both arenas closed = %d, want 0", got)
	}
}

// TestTenantWarmPoolIsolation checks that warm pools stay per-tenant: a
// buffer freed by one tenant must not be handed to another tenant's
// arena (the ledger would reject the charge origin anyway, but the
// pools themselves must not mix either).
func TestTenantWarmPoolIsolation(t *testing.T) {
	g := NewGovernor(0, 0)
	ta := g.Tenant("warm-a", 0)
	tb := g.Tenant("warm-b", 0)

	a := ta.NewArena()
	f := a.Floats(1000)
	a.FreeFloats(f)
	a.Close()

	b := tb.NewArena()
	f2 := b.Floats(1000)
	if got := tb.Stats().Floats.PoolHits; got != 0 {
		t.Fatalf("tenant B got %d pool hits from tenant A's freed buffers", got)
	}
	b.FreeFloats(f2)
	b.Close()
}
