package exec

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the memory governance layer above the arena: a
// Governor hands out per-tenant accounted arenas, enforces per-tenant
// byte budgets (through Tenant.charge, called by accounted allocations),
// admission-controls concurrent queries against a global reservation
// cap, and exports the per-tenant counters as a Metrics snapshot.

// DomainStats is the per-element-domain counter snapshot of a tenant:
// how many buffers the tenant's arenas allocated and released, and how
// many allocations were served from the pools (hits) versus the heap
// (misses).
type DomainStats struct {
	Allocs     int64
	Frees      int64
	PoolHits   int64
	PoolMisses int64
}

func (d DomainStats) plus(o DomainStats) DomainStats {
	return DomainStats{
		Allocs:     d.Allocs + o.Allocs,
		Frees:      d.Frees + o.Frees,
		PoolHits:   d.PoolHits + o.PoolHits,
		PoolMisses: d.PoolMisses + o.PoolMisses,
	}
}

// domainCounters is the live atomic form of DomainStats.
type domainCounters struct {
	allocs, frees, hits, misses atomic.Int64
}

func (c *domainCounters) snapshot() DomainStats {
	return DomainStats{
		Allocs:     c.allocs.Load(),
		Frees:      c.frees.Load(),
		PoolHits:   c.hits.Load(),
		PoolMisses: c.misses.Load(),
	}
}

// TenantStats is one tenant's Metrics row: the budget, the live and
// peak byte watermarks, and the pool counters per element domain.
type TenantStats struct {
	Tenant      string
	BudgetBytes int64 // 0 means unlimited
	LiveBytes   int64
	PeakBytes   int64
	Floats      DomainStats
	Ints        DomainStats
	Int64s      DomainStats
	Strings     DomainStats
}

// Total sums the counters over all four element domains.
func (s TenantStats) Total() DomainStats {
	return s.Floats.plus(s.Ints).plus(s.Int64s).plus(s.Strings)
}

// HitRate returns the fraction of allocations served from the pools
// across all domains (0 when nothing was allocated).
func (s TenantStats) HitRate() float64 {
	t := s.Total()
	if n := t.PoolHits + t.PoolMisses; n > 0 {
		return float64(t.PoolHits) / float64(n)
	}
	return 0
}

// Tenant is one accounting principal of a Governor: a byte budget plus
// the live/peak watermarks and pool counters aggregated over every
// arena the tenant has handed out. All fields are updated atomically,
// so arenas of concurrent queries belonging to the same tenant share
// one coherent byte count.
type Tenant struct {
	name   string
	budget atomic.Int64 // 0 means unlimited
	live   atomic.Int64 // bytes currently charged to outstanding buffers
	peak   atomic.Int64 // high-water mark of live

	floats, ints, int64s, strings domainCounters

	// pools is the tenant's warm pool set, shared by every arena the
	// tenant hands out: buffers freed by one statement are reused by the
	// next instead of each query starting from cold pools.
	pools poolSet
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Budget returns the tenant's byte cap (0 = unlimited).
func (t *Tenant) Budget() int64 { return t.budget.Load() }

// SetBudget replaces the tenant's byte cap; 0 removes it. Already-live
// bytes are never reclaimed — a lowered budget only affects future
// allocations.
func (t *Tenant) SetBudget(b int64) {
	if b < 0 {
		b = 0
	}
	t.budget.Store(b)
}

// LiveBytes returns the bytes currently charged to the tenant.
func (t *Tenant) LiveBytes() int64 { return t.live.Load() }

// PeakBytes returns the tenant's live high-water mark.
func (t *Tenant) PeakBytes() int64 { return t.peak.Load() }

// NewArena returns a fresh accounted arena charging this tenant. Every
// query (or statement) should draw its own arena and Close it when the
// query finishes: Close releases the query's outstanding charges, so a
// failed or abandoned query cannot strand bytes against the budget.
// The arena draws from the tenant's shared warm pools — only the
// ledger (origin verification) is per-arena.
func (t *Tenant) NewArena() *Arena {
	return &Arena{warm: &t.pools, acct: &acct{
		tenant:  t,
		floats:  make(map[*float64]int64),
		ints:    make(map[*int]int64),
		int64s:  make(map[*int64]int64),
		strings: make(map[*string]int64),
	}}
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	return TenantStats{
		Tenant:      t.name,
		BudgetBytes: t.budget.Load(),
		LiveBytes:   t.live.Load(),
		PeakBytes:   t.peak.Load(),
		Floats:      t.floats.snapshot(),
		Ints:        t.ints.snapshot(),
		Int64s:      t.int64s.snapshot(),
		Strings:     t.strings.snapshot(),
	}
}

// charge admits bytes against the budget, returning the typed error
// when the cap would be exceeded. The compare-and-swap loop makes the
// check-and-add atomic under concurrent queries of the same tenant.
func (t *Tenant) charge(bytes int64) *MemoryBudgetError {
	for {
		live := t.live.Load()
		if b := t.budget.Load(); b > 0 && live+bytes > b {
			return &MemoryBudgetError{Tenant: t.name, Requested: bytes, Live: live, Budget: b}
		}
		if t.live.CompareAndSwap(live, live+bytes) {
			maxInt64(&t.peak, live+bytes)
			return nil
		}
	}
}

// uncharge releases previously charged bytes.
func (t *Tenant) uncharge(bytes int64) {
	if bytes != 0 {
		t.live.Add(-bytes)
	}
}

// maxInt64 raises m to at least v.
func maxInt64(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Governor owns a set of tenants and admission-controls concurrent
// queries against a global byte cap: each query declares its budget on
// Admit and blocks until the sum of admitted budgets fits under the
// cap (and, when MaxQueries is set, until a concurrency slot frees up).
// Per-tenant budgets are enforced separately, at allocation time, by
// the accounted arenas the tenants hand out.
type Governor struct {
	globalCap  int64 // admission cap on the sum of declared budgets; 0 = unlimited
	maxQueries int   // admission cap on concurrently running queries; 0 = unlimited

	mu       sync.Mutex
	cond     *sync.Cond
	reserved int64 // sum of admitted budgets
	running  int
	queued   int
	admitted int64 // queries admitted over the governor's lifetime
	tenants  map[string]*Tenant

	// FIFO tickets: every Admit takes the next ticket and only the query
	// holding serveTicket may be admitted, so a large-budget waiter
	// cannot be starved by a stream of small queries slipping past it —
	// the standard head-of-line tradeoff: arrivals behind a blocked
	// query wait their turn.
	nextTicket  int64
	serveTicket int64
}

// NewGovernor returns a governor with the given admission limits:
// globalCap bounds the sum of declared budgets of concurrently admitted
// queries (0 = unlimited), maxQueries bounds their count (0 =
// unlimited).
func NewGovernor(globalCap int64, maxQueries int) *Governor {
	g := &Governor{
		globalCap:  globalCap,
		maxQueries: maxQueries,
		tenants:    make(map[string]*Tenant),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Tenant returns the named tenant, creating it on first use. A positive
// budget sets (or replaces) the tenant's byte cap; zero leaves the
// existing cap untouched, so callers that only read an established
// tenant pass 0.
func (g *Governor) Tenant(name string, budget int64) *Tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.tenants[name]
	if !ok {
		t = &Tenant{name: name}
		g.tenants[name] = t
	}
	if budget > 0 {
		t.budget.Store(budget)
	}
	return t
}

// DefaultTenant is the accounting principal governed invocations charge
// when no tenant name is configured.
const DefaultTenant = "default"

// ArenaFor resolves the accounted arena of one governed invocation: nil
// when neither a tenant nor a budget is configured (ungoverned execution
// on the shared arena), otherwise a fresh arena for the named tenant
// (DefaultTenant when the name is empty). A positive budget installs the
// tenant's cap; zero leaves any previously set cap in place (so
// repeated invocations need not restate it); a negative budget
// explicitly removes the cap — the accounting continues unlimited. This
// is the single place the governed-ness predicate and the default
// tenant name live; core and sql both resolve their per-invocation
// arenas through it.
func (g *Governor) ArenaFor(tenant string, budget int64) *Arena {
	if tenant == "" && budget == 0 {
		return nil
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	t := g.Tenant(tenant, budget)
	if budget < 0 {
		t.SetBudget(0)
	}
	return t.NewArena()
}

// Admit blocks until the query's declared budget fits under the
// governor's admission limits, then reserves it; the returned release
// function (idempotent) hands the reservation back. Admission is FIFO:
// queries are served in arrival order, so a large-budget query waits
// for room but is never starved by later small ones. A query whose
// declared budget alone exceeds the global cap is admitted when it
// would run alone rather than queueing forever; its tenant budget still
// governs its allocations.
func (g *Governor) Admit(budget int64) (release func()) {
	if budget < 0 {
		budget = 0
	}
	g.mu.Lock()
	ticket := g.nextTicket
	g.nextTicket++
	g.queued++
	for ticket != g.serveTicket || !g.fitsLocked(budget) {
		g.cond.Wait()
	}
	g.serveTicket++
	g.queued--
	g.running++
	g.reserved += budget
	g.admitted++
	g.mu.Unlock()
	// Wake the next ticket holder: it may fit alongside this query.
	g.cond.Broadcast()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.running--
			g.reserved -= budget
			g.mu.Unlock()
			g.cond.Broadcast()
		})
	}
}

func (g *Governor) fitsLocked(budget int64) bool {
	if g.maxQueries > 0 && g.running >= g.maxQueries {
		return false
	}
	if g.globalCap > 0 && g.reserved+budget > g.globalCap {
		return g.running == 0
	}
	return true
}

// GovernorMetrics is the exported snapshot of a governor: the admission state
// plus one TenantStats row per tenant, sorted by name.
type GovernorMetrics struct {
	GlobalCapBytes int64
	ReservedBytes  int64
	Running        int
	Queued         int
	Admitted       int64
	Tenants        []TenantStats
}

// Metrics snapshots the governor's admission state and every tenant's
// counters.
func (g *Governor) Metrics() GovernorMetrics {
	g.mu.Lock()
	m := GovernorMetrics{
		GlobalCapBytes: g.globalCap,
		ReservedBytes:  g.reserved,
		Running:        g.running,
		Queued:         g.queued,
		Admitted:       g.admitted,
	}
	tenants := make([]*Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		tenants = append(tenants, t)
	}
	g.mu.Unlock()
	sort.Slice(tenants, func(a, b int) bool { return tenants[a].name < tenants[b].name })
	for _, t := range tenants {
		m.Tenants = append(m.Tenants, t.Stats())
	}
	return m
}

// defaultGov is the process-default governor behind DefaultGovernor and
// the package-level Metrics: unlimited admission, so it only provides
// tenancy and per-tenant budgets until a deployment installs real caps
// through its own NewGovernor.
var defaultGov = NewGovernor(0, 0)

// DefaultGovernor returns the process-default governor. core.Options
// and sql.DB resolve tenants against it unless an explicit governor is
// configured.
func DefaultGovernor() *Governor { return defaultGov }

// SetDefaultGovernorLimits replaces the default governor's admission
// limits (globalCap in bytes, maxQueries concurrent; 0 = unlimited).
// Existing tenants and their counters are preserved.
func SetDefaultGovernorLimits(globalCap int64, maxQueries int) {
	g := defaultGov
	g.mu.Lock()
	g.globalCap = globalCap
	g.maxQueries = maxQueries
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Metrics snapshots the default governor — the package-level metrics
// surface the CLIs publish through expvar.
func Metrics() GovernorMetrics { return defaultGov.Metrics() }
