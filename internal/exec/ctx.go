// Package exec provides the per-invocation execution context of the RMA
// stack: a worker budget, a size-classed buffer arena, and a stats sink,
// bundled in a Ctx that every layer — the BAT kernels, the dense linear
// algebra, the column-at-a-time matrix operations, the relational
// operators, and the RMA core — takes explicitly.
//
// Before this package existed the worker budget lived in process-wide
// atomics (bat.SetParallelism, linalg.SetParallelism), so two concurrent
// queries with different budgets raced on a global knob. A Ctx scopes the
// budget to one invocation: concurrent queries each carry their own Ctx
// and never observe each other's settings. The process-wide knobs survive
// as deprecated shims that seed the default Ctx (see DefaultWorkers).
//
// A nil *Ctx is valid everywhere and behaves like Default(): the default
// worker budget, the shared arena, and no stats. Kernels therefore never
// need to guard against a missing context.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SerialCutoff is the number of elements at or below which the vectorized
// kernels stay on a single goroutine: at 16Ki float64s (128 KiB, two L2
// tiles) the per-goroutine scheduling cost exceeds the work saved. The
// first parallel size is SerialCutoff+1. It is also the fixed chunk edge
// of the deterministic reductions, so tests probe the serial→parallel
// boundary at SerialCutoff-1, SerialCutoff, SerialCutoff+1.
const SerialCutoff = 1 << 14

// defaultWorkers is the process-wide fallback budget used by contexts
// without an explicit budget (and by nil contexts), defaulting to
// GOMAXPROCS. The deprecated bat.SetParallelism / linalg.SetParallelism
// shims write it.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// DefaultWorkers returns the process-wide fallback worker budget.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// SetDefaultWorkers sets the fallback budget and returns the previous
// value. Values below 1 are clamped to 1. Prefer per-invocation contexts
// (New); this knob only exists so legacy callers and tests can steer code
// paths that run without an explicit Ctx.
func SetDefaultWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(defaultWorkers.Swap(int32(n)))
}

// Stats is the per-invocation sink of execution counters. Workers is
// recorded at context construction; the atomic counters are bumped by the
// parallel drivers as sections fan out. One Stats must not be shared
// between invocations that should be accounted separately.
type Stats struct {
	// Workers is the budget the owning context resolved at construction.
	Workers int
	// Sections counts parallel sections that actually fanned out to more
	// than one goroutine (serial-cutoff sections are not counted).
	Sections atomic.Int64
	// Goroutines counts goroutines spawned by those sections.
	Goroutines atomic.Int64
	// SpilledBytes counts bytes written to disk by spill paths
	// (hash-join partitions, aggregation partials, sort runs).
	SpilledBytes atomic.Int64
	// SpilledPartitions counts on-disk partitions those paths created.
	SpilledPartitions atomic.Int64
}

// section records one fan-out of g goroutines; nil-safe.
func (s *Stats) section(g int) {
	if s != nil {
		s.Sections.Add(1)
		s.Goroutines.Add(int64(g))
	}
}

// Ctx is one invocation's execution context. The zero value (and nil) is
// the default context: fallback worker budget, shared arena, no stats.
type Ctx struct {
	workers int    // 0 means "track DefaultWorkers dynamically"
	arena   *Arena // nil means the shared arena
	stats   *Stats
	spill   *Spill // nil disables out-of-core execution
}

// defaultCtx backs Default; its zero fields resolve dynamically.
var defaultCtx Ctx

// Default returns the process default context: DefaultWorkers() workers,
// the shared arena, no stats sink.
func Default() *Ctx { return &defaultCtx }

// New returns a context with a fixed worker budget. workers <= 0 leaves
// the budget dynamic (the context follows DefaultWorkers, the documented
// fallback for zero/absent budgets); workers == 1 forces serial execution.
func New(workers int) *Ctx {
	if workers < 0 {
		workers = 0
	}
	return &Ctx{workers: workers}
}

// NewCtx returns a fully specified context. arena == nil selects the
// shared arena; stats == nil disables instrumentation. When stats is
// non-nil its Workers field is set to the resolved budget — and a
// dynamic budget (workers <= 0) is pinned to DefaultWorkers() at
// construction, so the recorded value can never go stale against the
// budget the invocation actually runs with: an instrumented context
// executes with exactly the budget its Stats report, even if the
// process default changes between construction and the query running.
// Only uninstrumented contexts keep following the default dynamically.
func NewCtx(workers int, arena *Arena, stats *Stats) *Ctx {
	c := New(workers)
	c.arena = arena
	c.stats = stats
	if stats != nil {
		if c.workers == 0 {
			c.workers = DefaultWorkers()
		}
		stats.Workers = c.Workers()
	}
	return c
}

// Workers resolves the context's worker budget; nil-safe. A context built
// without an explicit budget follows DefaultWorkers.
func (c *Ctx) Workers() int {
	if c == nil || c.workers <= 0 {
		return DefaultWorkers()
	}
	return c.workers
}

// Arena returns the context's buffer arena; nil-safe (the shared arena).
func (c *Ctx) Arena() *Arena {
	if c == nil || c.arena == nil {
		return Shared()
	}
	return c.arena
}

// Stats returns the context's stats sink, or nil; nil-safe.
func (c *Ctx) Stats() *Stats {
	if c == nil {
		return nil
	}
	return c.stats
}

// ParallelFor splits [0, n) into at most Workers() contiguous ranges and
// runs body on every range, on the calling goroutine when n does not
// exceed minWork (so parallelism engages at n = minWork+1; ranges can be
// as small as ⌈minWork/workers⌉ right above the boundary). This is the
// shared parallel driver of the execution stack: the BAT kernels, the
// column loops of package batlin, and the copy-in/copy-out loops of
// package core all decompose their work through it.
func (c *Ctx) ParallelFor(n, minWork int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := c.Workers()
	if minWork < 1 {
		minWork = 1
	}
	if ceil := (n + minWork - 1) / minWork; workers > ceil {
		workers = ceil
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	spawned := (n + chunk - 1) / chunk
	c.Stats().section(spawned)
	// Worker panics are forwarded to the calling goroutine after the
	// section drains: a budget overrun (or any other panic) inside a
	// parallel body must unwind the caller — where CatchBudget waits —
	// not kill the process from an unrecoverable worker goroutine.
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked bool
	var panicVal any
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					panicMu.Unlock()
				}
			}()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// ParallelRuns returns the contiguous-range decomposition the
// range-concatenating kernels share: at most Workers() runs of at least
// SerialCutoff elements each, as (count, size) with count = ceil(n/size).
// Kernels that concatenate per-run outputs in run order produce the same
// result for any decomposition, so the run count may depend on the worker
// budget without breaking determinism. An empty range (n <= 0) yields
// zero runs with a positive size, so loops over the runs do nothing and
// ceil-divisions by size stay well-defined.
func (c *Ctx) ParallelRuns(n int) (runs, size int) {
	if n <= 0 {
		return 0, 1
	}
	runs = min(c.Workers(), (n+SerialCutoff-1)/SerialCutoff)
	size = (n + runs - 1) / runs
	return (n + size - 1) / size, size
}

// Serial reports whether ParallelFor would run a range of n elements with
// minWork SerialCutoff on the calling goroutine. Kernels branch on it
// before building their ParallelFor closure: a closure capturing the
// operand slices is a heap allocation, which on the serial path would
// cost more than it saves.
func (c *Ctx) Serial(n int) bool {
	return n <= SerialCutoff || c.Workers() <= 1
}

// Reduce sums per-chunk partial results over fixed-size chunks of
// SerialCutoff elements. Chunk boundaries depend only on n — never on the
// worker budget — and partials are combined in ascending chunk order, so
// the result is bitwise-identical at any parallelism (the property the
// -race tests across the stack assert).
func (c *Ctx) Reduce(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + SerialCutoff - 1) / SerialCutoff
	if chunks == 1 {
		return partial(0, n)
	}
	if c.Workers() <= 1 {
		var s float64
		for ch := 0; ch < chunks; ch++ {
			s += partial(ch*SerialCutoff, min((ch+1)*SerialCutoff, n))
		}
		return s
	}
	parts := c.Arena().Floats(chunks)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			parts[ch] = partial(ch*SerialCutoff, min((ch+1)*SerialCutoff, n))
		}
	})
	var s float64
	for _, p := range parts {
		s += p
	}
	c.Arena().FreeFloats(parts)
	return s
}
