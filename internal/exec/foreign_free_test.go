package exec

import (
	"sync"
	"testing"
)

// TestForeignFreeUnchargesOwner is the regression test for the carried
// PR 4/5 accounting gap: a buffer freed into an arena other than the
// one that allocated it used to stay charged against its owner until
// the owning arena closed. The owner registry fix releases the charge
// at the moment of the foreign free, whichever arena receives it.
// (Verified failing before the registry fix: owner live stayed at 512
// after each foreign free below.)
func TestForeignFreeUnchargesOwner(t *testing.T) {
	g := NewGovernor(0, 0)
	owner := g.Tenant("owner", 0)
	other := g.Tenant("other", 0)
	a1 := owner.NewArena()
	a2 := other.NewArena()
	plain := NewArena()
	defer a1.Close()
	defer a2.Close()

	// Freed into a plain (unaccounted) arena.
	buf := a1.Floats(64) // 512 bytes charged to owner
	if got := owner.LiveBytes(); got != 512 {
		t.Fatalf("owner live after alloc = %d, want 512", got)
	}
	plain.FreeFloats(buf)
	if got := owner.LiveBytes(); got != 0 {
		t.Fatalf("owner live after free into plain arena = %d, want 0 (gap: charge carried to Close)", got)
	}
	if got := owner.Stats().Floats.Frees; got != 1 {
		t.Fatalf("owner counted %d float frees, want 1", got)
	}

	// Freed into another tenant's accounted arena: the owner is
	// uncharged, the receiving tenant's books are untouched.
	buf = a1.Floats(64)
	a2.FreeFloats(buf)
	if got := owner.LiveBytes(); got != 0 {
		t.Fatalf("owner live after free into foreign accounted arena = %d, want 0", got)
	}
	if got := other.LiveBytes(); got != 0 {
		t.Fatalf("receiving tenant live = %d after foreign free, want 0", got)
	}
	if got := other.Stats().Floats.Frees; got != 0 {
		t.Fatalf("receiving tenant counted %d frees for a foreign buffer", got)
	}

	// Every element domain takes the same path.
	ints := a1.Ints(64)
	i64s := a1.Int64s(64)
	strs := a1.Strings(64)
	if got := owner.LiveBytes(); got == 0 {
		t.Fatal("nothing charged for the three remaining domains")
	}
	plain.FreeInts(ints)
	plain.FreeInt64s(i64s)
	plain.FreeStrings(strs)
	if got := owner.LiveBytes(); got != 0 {
		t.Fatalf("owner live after foreign frees across domains = %d, want 0", got)
	}

	// Close after a foreign free must not double-uncharge: the ledger
	// entry went with the foreign free, so Close releases nothing more.
	buf = a1.Floats(64)
	plain.FreeFloats(buf)
	a1.Close()
	if got := owner.LiveBytes(); got != 0 {
		t.Fatalf("owner live after Close = %d, want 0 (double uncharge would go negative)", got)
	}
}

// TestForeignFreeConcurrent hammers the owner-registry seam under
// -race: many goroutines allocate from per-tenant accounted arenas and
// free half of the buffers into the wrong arena. Every tenant must
// drain to exactly zero live bytes before its arenas close.
func TestForeignFreeConcurrent(t *testing.T) {
	g := NewGovernor(0, 0)
	t1 := g.Tenant("ff-a", 0)
	t2 := g.Tenant("ff-b", 0)
	plain := NewArena()

	const (
		workers  = 8
		rounds   = 200
		elements = 128
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine, theirs := t1, t2
			if w%2 == 1 {
				mine, theirs = t2, t1
			}
			a := mine.NewArena()
			defer a.Close()
			foreign := theirs.NewArena()
			defer foreign.Close()
			for r := 0; r < rounds; r++ {
				f := a.Floats(elements)
				i := a.Ints(elements)
				switch r % 3 {
				case 0: // owner free
					a.FreeFloats(f)
					a.FreeInts(i)
				case 1: // free into the other tenant's arena
					foreign.FreeFloats(f)
					foreign.FreeInts(i)
				default: // free into a plain arena
					plain.FreeFloats(f)
					plain.FreeInts(i)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := t1.LiveBytes(); got != 0 {
		t.Fatalf("tenant a live after drain = %d, want 0", got)
	}
	if got := t2.LiveBytes(); got != 0 {
		t.Fatalf("tenant b live after drain = %d, want 0", got)
	}
}
