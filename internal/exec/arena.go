package exec

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Arena recycles the buffers the vectorized kernels produce: float64
// tails, int permutations, and — since the per-query context refactor —
// int64 and string tails. Kernels allocate every output through the
// arena of their Ctx; callers that know a buffer is dead hand it back
// with the matching Free method (or bat.Release at the BAT level) and the
// next allocation reuses the memory instead of growing the heap.
//
// Buffers are pooled in power-of-two size classes backed by sync.Pool, so
// anything never freed is simply garbage collected and a Get after a GC
// falls back to make; an arena can only reduce allocations, never retain
// memory beyond what the GC allows. Each Arena instance owns its own
// pools: the shared arena serves default contexts, while a query that
// wants buffer isolation (bounded interference) carries a private
// NewArena in its Ctx.
//
// Arenas come in two accounting flavors. Plain arenas (Shared, NewArena)
// keep zero bookkeeping: buffers may migrate between them freely — Free
// only checks the capacity class, never the origin. Accounted arenas
// (Tenant.NewArena) additionally charge every allocation's full capacity
// in bytes against their tenant's live count, enforce the tenant's
// budget (an overrun unwinds as a typed panic that CatchBudget converts
// back into ErrMemoryBudget at the nearest error boundary), and verify
// buffer origin through a per-arena ledger: Free on an accounted arena
// only pools buffers that arena itself handed out. A buffer freed into
// the wrong arena is resolved through a process-wide owner registry —
// the true owner's tenant is uncharged at that moment, not at Close —
// but the foreign buffer still never enters an accounted arena's pools,
// so migration cannot smuggle memory into pools the owner never fed.
// Close releases an accounted arena's remaining charges at end of
// query.
//
// Tenant arenas share their tenant's pool set (warm non-nil) instead of
// carrying private pools: buffers freed during one statement warm the
// pools for the tenant's next statement, so budgeted tenants stop paying
// the cold-pool cost on every query. The ledger stays per-arena, so the
// shared pools change nothing about origin verification or budgets.
type Arena struct {
	local poolSet
	warm  *poolSet // tenant-shared pools; nil for standalone arenas
	acct  *acct    // nil for plain (unaccounted) arenas
}

// poolSet holds one size-classed sync.Pool array per element domain.
// Standalone arenas embed one; tenants own one shared by all of their
// arenas.
type poolSet struct {
	floats  [poolClasses]sync.Pool // class c holds *[]float64 of cap 1<<(minPoolShift+c)
	ints    [poolClasses]sync.Pool // class c holds *[]int
	int64s  [poolClasses]sync.Pool // class c holds *[]int64
	strings [poolClasses]sync.Pool // class c holds *[]string
}

// ps returns the pool set this arena draws from: the tenant's shared
// set when present, otherwise the arena's own.
func (a *Arena) ps() *poolSet {
	if a.warm != nil {
		return a.warm
	}
	return &a.local
}

// acct is the accounting state of a budgeted arena: the tenant the
// bytes are charged to, plus one ledger per element domain mapping a
// buffer's first-element pointer to the bytes charged for it. The
// ledger is what lets Free verify origin — only buffers this arena
// allocated (and has not yet released) appear in it.
type acct struct {
	tenant *Tenant

	mu      sync.Mutex
	closed  bool
	floats  map[*float64]int64
	ints    map[*int]int64
	int64s  map[*int64]int64
	strings map[*string]int64
	// reserved carries bytes charged through Reserve — buffer-pool
	// residency and other non-slice memory (decoded disk segments,
	// spill staging) that the slice ledgers cannot see. Released by
	// Unreserve or, in bulk, by Close.
	reserved int64
}

// ownerReg maps a live accounted buffer's first-element pointer to the
// acct that charged it, one registry per element domain. It closes the
// foreign-free accounting gap: a buffer freed into an arena that did
// not allocate it used to stay charged against its owner until the
// owning arena closed; the registry lets any arena's Free find the true
// owner and release the charge immediately. Registry and ledger are
// updated together under the owner's mutex, so an entry here always has
// a matching ledger entry (and vice versa) — a foreign free that loses
// the race with the owner's own free or Close simply finds no ledger
// entry and backs off.
type ownerReg[T any] struct {
	m      sync.Map // *T -> *acct
	ledger func(ac *acct) map[*T]int64
	ctr    func(tn *Tenant) *domainCounters
}

// liveOwned counts registered buffers process-wide. It is the fast-path
// guard on unaccounted frees: while no accounted arena holds live
// buffers, a plain Free pays one atomic load and nothing else.
var liveOwned atomic.Int64

var (
	floatOwners = ownerReg[float64]{
		ledger: func(ac *acct) map[*float64]int64 { return ac.floats },
		ctr:    func(tn *Tenant) *domainCounters { return &tn.floats },
	}
	intOwners = ownerReg[int]{
		ledger: func(ac *acct) map[*int]int64 { return ac.ints },
		ctr:    func(tn *Tenant) *domainCounters { return &tn.ints },
	}
	int64Owners = ownerReg[int64]{
		ledger: func(ac *acct) map[*int64]int64 { return ac.int64s },
		ctr:    func(tn *Tenant) *domainCounters { return &tn.int64s },
	}
	stringOwners = ownerReg[string]{
		ledger: func(ac *acct) map[*string]int64 { return ac.strings },
		ctr:    func(tn *Tenant) *domainCounters { return &tn.strings },
	}
)

// release uncharges a buffer freed into an arena that does not own it.
// When some accounted arena's ledger still carries the buffer, the
// owner's ledger entry is removed, the free is counted on the owner's
// tenant, and the charge is released — exactly what the owner's own
// Free would have done, minus the pooling. Returns false for buffers no
// registry knows (plain-arena or already-released memory), leaving the
// caller's behavior unchanged.
func (r *ownerReg[T]) release(s []T) bool {
	if cap(s) == 0 || liveOwned.Load() == 0 {
		return false
	}
	key := &s[:1][0]
	v, ok := r.m.Load(key)
	if !ok {
		return false
	}
	ac := v.(*acct)
	ac.mu.Lock()
	var bytes int64
	if ac.closed {
		ok = false
	} else {
		m := r.ledger(ac)
		if bytes, ok = m[key]; ok {
			delete(m, key)
			r.m.Delete(key)
			liveOwned.Add(-1)
		}
	}
	ac.mu.Unlock()
	if !ok {
		return false
	}
	r.ctr(ac.tenant).frees.Add(1)
	ac.tenant.uncharge(bytes)
	return true
}

// dropOwners clears the registry entries for every buffer still in an
// arena's ledger; called by Close under the owner's mutex.
func dropOwners[T any](r *ownerReg[T], m map[*T]int64) {
	for k := range m {
		r.m.Delete(k)
		liveOwned.Add(-1)
	}
}

// Element sizes charged per domain, in bytes.
const (
	floatSize  = 8
	intSize    = bits.UintSize / 8
	int64Size  = 8
	stringSize = 2 * bits.UintSize / 8 // string header: pointer + length
)

const (
	// minPoolShift is the smallest pooled capacity (64 elements): below
	// that the pool bookkeeping costs more than the allocation.
	minPoolShift = 6
	// maxPoolShift caps pooled buffers at 16Mi elements (128 MiB of
	// float64s); larger columns go straight to the allocator.
	maxPoolShift = 24
	poolClasses  = maxPoolShift - minPoolShift + 1
)

// shared is the process-wide arena behind Shared() and every Ctx without
// a private arena.
var shared Arena

// Shared returns the process-wide arena.
func Shared() *Arena { return &shared }

// NewArena returns a fresh arena with empty pools.
func NewArena() *Arena { return &Arena{} }

// classFor returns the pool class whose capacity 1<<(minPoolShift+class)
// is the smallest one holding n elements, or -1 when n is outside the
// pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	shift := bits.Len(uint(n - 1))
	if shift < minPoolShift {
		shift = minPoolShift
	}
	return shift - minPoolShift
}

// capClass returns the pool class for a buffer of exactly capacity c, or
// -1 when c is not a pooled class size. Only exact class capacities are
// accepted so foreign slices cannot poison the pool with odd sizes.
func capClass(c int) int {
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return -1
	}
	return bits.Len(uint(c)) - 1 - minPoolShift
}

// alloc returns a slice of length n from the size-classed pools, falling
// back to make outside the pooled range. Contents are undefined.
func alloc[T any](pools *[poolClasses]sync.Pool, n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if p, _ := pools[c].Get().(*[]T); p != nil {
		return (*p)[:n]
	}
	return make([]T, n, 1<<(c+minPoolShift))
}

// free returns a slice to the pools. clearRefs zeroes the full capacity
// first — required for pointer-carrying element types (strings) so pooled
// buffers do not pin dead values against the garbage collector.
func free[T any](pools *[poolClasses]sync.Pool, s []T, clearRefs bool) {
	c := capClass(cap(s))
	if c < 0 {
		return
	}
	if clearRefs {
		clear(s[:cap(s)])
	}
	s = s[:0]
	pools[c].Put(&s)
}

// acctAlloc is alloc for accounted arenas: it counts the pool hit/miss,
// charges the buffer's full capacity against the tenant's budget, and
// records the buffer in the arena's ledger. A budget overrun panics
// with the typed budgetPanic (see CatchBudget); the pooled buffer, if
// any, is returned to the pool first so a rejected allocation strands
// nothing.
// The ledger is passed as a pointer to the acct field and dereferenced
// only under ac.mu: Close nils the field under the same lock, so a
// racing alloc/free can never act on a stale map snapshot.
func acctAlloc[T any](ac *acct, reg *ownerReg[T], pools *[poolClasses]sync.Pool, ctr *domainCounters, owned *map[*T]int64, elemSize, n int) []T {
	// Charge before allocating: the buffer's capacity is known up front
	// (the pool class size, or exactly n outside the pooled range — Free
	// only pools exact class capacities, so a pooled Get always matches),
	// and an over-budget request must be rejected before any physical
	// memory is committed, or the budget would not prevent the very
	// transient spike it exists to bound. Rejected allocations are not
	// counted: the metrics report buffers actually delivered.
	cls := classFor(n)
	capElems := n
	if cls >= 0 {
		capElems = 1 << (cls + minPoolShift)
	}
	bytes := int64(capElems) * int64(elemSize)
	if bytes > 0 {
		if err := ac.tenant.charge(bytes); err != nil {
			panic(budgetPanic{err})
		}
	}
	var s []T
	hit := false
	if cls >= 0 {
		if p, _ := pools[cls].Get().(*[]T); p != nil {
			s = (*p)[:n]
			hit = true
		} else {
			s = make([]T, n, capElems)
		}
	} else {
		s = make([]T, n)
	}
	ctr.allocs.Add(1)
	if hit {
		ctr.hits.Add(1)
	} else {
		ctr.misses.Add(1)
	}
	if bytes == 0 {
		return s
	}
	key := &s[:1][0]
	ac.mu.Lock()
	if ac.closed {
		ac.mu.Unlock()
		ac.tenant.uncharge(bytes)
		return s
	}
	(*owned)[key] = bytes
	reg.m.Store(key, ac)
	liveOwned.Add(1)
	ac.mu.Unlock()
	return s
}

// acctFree is free for accounted arenas. Origin is verified through the
// ledger: only buffers this arena handed out are uncharged and pooled.
// A buffer owned by some other accounted arena is uncharged against its
// true owner through the registry but still left to the garbage
// collector rather than pooled here, so cross-arena migration can
// neither corrupt a tenant's byte count nor smuggle memory into pools
// the owner never fed. Double frees and stray make()d buffers remain
// no-ops.
func acctFree[T any](ac *acct, reg *ownerReg[T], pools *[poolClasses]sync.Pool, ctr *domainCounters, owned *map[*T]int64, s []T, clearRefs bool) {
	if cap(s) == 0 {
		return
	}
	key := &s[:1][0]
	ac.mu.Lock()
	bytes, ok := (*owned)[key]
	if ok {
		delete(*owned, key)
		reg.m.Delete(key)
		liveOwned.Add(-1)
	}
	closed := ac.closed
	ac.mu.Unlock()
	if !ok {
		reg.release(s)
		return
	}
	ctr.frees.Add(1)
	ac.tenant.uncharge(bytes)
	if closed {
		return
	}
	cls := capClass(cap(s))
	if cls < 0 {
		return
	}
	if clearRefs {
		clear(s[:cap(s)])
	}
	s = s[:0]
	pools[cls].Put(&s)
}

// Floats returns a float64 slice of length n, recycled when a buffer of a
// suitable class is available. The contents are undefined; use FloatsZero
// when the kernel does not overwrite every element. Nil-safe: a nil arena
// delegates to the shared one.
func (a *Arena) Floats(n int) []float64 {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		return acctAlloc(ac, &floatOwners, &a.ps().floats, &ac.tenant.floats, &ac.floats, floatSize, n)
	}
	return alloc[float64](&a.ps().floats, n)
}

// FloatsZero returns a zeroed float64 slice of length n.
func (a *Arena) FloatsZero(n int) []float64 {
	f := a.Floats(n)
	clear(f)
	return f
}

// FreeFloats returns a float64 slice to the arena. The caller asserts
// sole ownership: the slice (and any BAT or Vector wrapping it) must not
// be used afterwards. Slices whose capacity is not an exact arena class
// are left to the garbage collector.
func (a *Arena) FreeFloats(f []float64) {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		acctFree(ac, &floatOwners, &a.ps().floats, &ac.tenant.floats, &ac.floats, f, false)
		return
	}
	floatOwners.release(f)
	free(&a.ps().floats, f, false)
}

// Ints returns an int slice of length n (the permutation buffers of
// SortIndex and Identity).
func (a *Arena) Ints(n int) []int {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		return acctAlloc(ac, &intOwners, &a.ps().ints, &ac.tenant.ints, &ac.ints, intSize, n)
	}
	return alloc[int](&a.ps().ints, n)
}

// FreeInts returns an int slice to the arena under the same ownership
// contract as FreeFloats.
func (a *Arena) FreeInts(idx []int) {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		acctFree(ac, &intOwners, &a.ps().ints, &ac.tenant.ints, &ac.ints, idx, false)
		return
	}
	intOwners.release(idx)
	free(&a.ps().ints, idx, false)
}

// Int64s returns an int64 slice of length n (the int tails of gathered
// and padded columns).
func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		return acctAlloc(ac, &int64Owners, &a.ps().int64s, &ac.tenant.int64s, &ac.int64s, int64Size, n)
	}
	return alloc[int64](&a.ps().int64s, n)
}

// FreeInt64s returns an int64 slice to the arena.
func (a *Arena) FreeInt64s(xs []int64) {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		acctFree(ac, &int64Owners, &a.ps().int64s, &ac.tenant.int64s, &ac.int64s, xs, false)
		return
	}
	int64Owners.release(xs)
	free(&a.ps().int64s, xs, false)
}

// Strings returns a string slice of length n. Recycled buffers come back
// zeroed (FreeStrings clears them), so every element is the empty string.
func (a *Arena) Strings(n int) []string {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		return acctAlloc(ac, &stringOwners, &a.ps().strings, &ac.tenant.strings, &ac.strings, stringSize, n)
	}
	return alloc[string](&a.ps().strings, n)
}

// FreeStrings returns a string slice to the arena, clearing it first so
// the pool does not pin the released values against the collector.
func (a *Arena) FreeStrings(ss []string) {
	if a == nil {
		a = Shared()
	}
	if ac := a.acct; ac != nil {
		acctFree(ac, &stringOwners, &a.ps().strings, &ac.tenant.strings, &ac.strings, ss, true)
		return
	}
	stringOwners.release(ss)
	free(&a.ps().strings, ss, true)
}

// Reserve charges bytes of non-slice residency — the buffer pool's
// decoded segments, a spill consumer's transient staging — against the
// arena's tenant so the governor's ledger stays truthful for memory
// the slice ledgers cannot see. Returns the typed budget error on
// overrun (nothing is charged then). Plain arenas accept any
// reservation for free. Balance with Unreserve; Close releases any
// remainder.
func (a *Arena) Reserve(bytes int64) error {
	if a == nil || a.acct == nil || bytes <= 0 {
		return nil
	}
	ac := a.acct
	if err := ac.tenant.charge(bytes); err != nil {
		return err
	}
	ac.mu.Lock()
	if ac.closed {
		ac.mu.Unlock()
		ac.tenant.uncharge(bytes)
		return nil
	}
	ac.reserved += bytes
	ac.mu.Unlock()
	return nil
}

// Unreserve releases bytes previously charged with Reserve. Releasing
// more than is reserved is clamped; after Close it is a no-op (Close
// already settled the remainder).
func (a *Arena) Unreserve(bytes int64) {
	if a == nil || a.acct == nil || bytes <= 0 {
		return
	}
	ac := a.acct
	ac.mu.Lock()
	if ac.closed {
		ac.mu.Unlock()
		return
	}
	if bytes > ac.reserved {
		bytes = ac.reserved
	}
	ac.reserved -= bytes
	ac.mu.Unlock()
	ac.tenant.uncharge(bytes)
}

// Tenant returns the tenant an accounted arena charges, or nil for
// plain arenas (including the shared one).
func (a *Arena) Tenant() *Tenant {
	if a == nil || a.acct == nil {
		return nil
	}
	return a.acct.tenant
}

// Close ends an accounted arena's accounting: every outstanding charge
// is released back to the tenant and the ledgers are dropped, so a
// finished (or failed) query cannot strand bytes against the budget.
// Buffers still referenced — a query's result columns, typically —
// remain valid; they simply leave the governed scope, which is the
// budget's contract: it bounds in-flight execution memory, not results
// a caller holds on to. Frees arriving after Close are ignored (the
// ledger no longer knows the buffer) and allocations fall through to
// the heap uncharged. Close is idempotent and a no-op on plain arenas.
func (a *Arena) Close() {
	if a == nil || a.acct == nil {
		return
	}
	ac := a.acct
	ac.mu.Lock()
	if ac.closed {
		ac.mu.Unlock()
		return
	}
	ac.closed = true
	var total int64
	for _, b := range ac.floats {
		total += b
	}
	for _, b := range ac.ints {
		total += b
	}
	for _, b := range ac.int64s {
		total += b
	}
	for _, b := range ac.strings {
		total += b
	}
	total += ac.reserved
	ac.reserved = 0
	dropOwners(&floatOwners, ac.floats)
	dropOwners(&intOwners, ac.ints)
	dropOwners(&int64Owners, ac.int64s)
	dropOwners(&stringOwners, ac.strings)
	ac.floats, ac.ints, ac.int64s, ac.strings = nil, nil, nil, nil
	ac.mu.Unlock()
	ac.tenant.uncharge(total)
}
