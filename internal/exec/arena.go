package exec

import (
	"math/bits"
	"sync"
)

// Arena recycles the buffers the vectorized kernels produce: float64
// tails, int permutations, and — since the per-query context refactor —
// int64 and string tails. Kernels allocate every output through the
// arena of their Ctx; callers that know a buffer is dead hand it back
// with the matching Free method (or bat.Release at the BAT level) and the
// next allocation reuses the memory instead of growing the heap.
//
// Buffers are pooled in power-of-two size classes backed by sync.Pool, so
// anything never freed is simply garbage collected and a Get after a GC
// falls back to make; an arena can only reduce allocations, never retain
// memory beyond what the GC allows. Each Arena instance owns its own
// pools: the shared arena serves default contexts, while a query that
// wants buffer isolation (per-tenant accounting, bounded interference)
// carries a private NewArena in its Ctx. Buffers may migrate between
// arenas — Free only checks the capacity class, never the origin — which
// trades strict ownership for zero bookkeeping.
type Arena struct {
	floats  [poolClasses]sync.Pool // class c holds *[]float64 of cap 1<<(minPoolShift+c)
	ints    [poolClasses]sync.Pool // class c holds *[]int
	int64s  [poolClasses]sync.Pool // class c holds *[]int64
	strings [poolClasses]sync.Pool // class c holds *[]string
}

const (
	// minPoolShift is the smallest pooled capacity (64 elements): below
	// that the pool bookkeeping costs more than the allocation.
	minPoolShift = 6
	// maxPoolShift caps pooled buffers at 16Mi elements (128 MiB of
	// float64s); larger columns go straight to the allocator.
	maxPoolShift = 24
	poolClasses  = maxPoolShift - minPoolShift + 1
)

// shared is the process-wide arena behind Shared() and every Ctx without
// a private arena.
var shared Arena

// Shared returns the process-wide arena.
func Shared() *Arena { return &shared }

// NewArena returns a fresh arena with empty pools.
func NewArena() *Arena { return &Arena{} }

// classFor returns the pool class whose capacity 1<<(minPoolShift+class)
// is the smallest one holding n elements, or -1 when n is outside the
// pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	shift := bits.Len(uint(n - 1))
	if shift < minPoolShift {
		shift = minPoolShift
	}
	return shift - minPoolShift
}

// capClass returns the pool class for a buffer of exactly capacity c, or
// -1 when c is not a pooled class size. Only exact class capacities are
// accepted so foreign slices cannot poison the pool with odd sizes.
func capClass(c int) int {
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return -1
	}
	return bits.Len(uint(c)) - 1 - minPoolShift
}

// alloc returns a slice of length n from the size-classed pools, falling
// back to make outside the pooled range. Contents are undefined.
func alloc[T any](pools *[poolClasses]sync.Pool, n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if p, _ := pools[c].Get().(*[]T); p != nil {
		return (*p)[:n]
	}
	return make([]T, n, 1<<(c+minPoolShift))
}

// free returns a slice to the pools. clearRefs zeroes the full capacity
// first — required for pointer-carrying element types (strings) so pooled
// buffers do not pin dead values against the garbage collector.
func free[T any](pools *[poolClasses]sync.Pool, s []T, clearRefs bool) {
	c := capClass(cap(s))
	if c < 0 {
		return
	}
	if clearRefs {
		clear(s[:cap(s)])
	}
	s = s[:0]
	pools[c].Put(&s)
}

// Floats returns a float64 slice of length n, recycled when a buffer of a
// suitable class is available. The contents are undefined; use FloatsZero
// when the kernel does not overwrite every element. Nil-safe: a nil arena
// delegates to the shared one.
func (a *Arena) Floats(n int) []float64 {
	if a == nil {
		a = Shared()
	}
	return alloc[float64](&a.floats, n)
}

// FloatsZero returns a zeroed float64 slice of length n.
func (a *Arena) FloatsZero(n int) []float64 {
	f := a.Floats(n)
	clear(f)
	return f
}

// FreeFloats returns a float64 slice to the arena. The caller asserts
// sole ownership: the slice (and any BAT or Vector wrapping it) must not
// be used afterwards. Slices whose capacity is not an exact arena class
// are left to the garbage collector.
func (a *Arena) FreeFloats(f []float64) {
	if a == nil {
		a = Shared()
	}
	free(&a.floats, f, false)
}

// Ints returns an int slice of length n (the permutation buffers of
// SortIndex and Identity).
func (a *Arena) Ints(n int) []int {
	if a == nil {
		a = Shared()
	}
	return alloc[int](&a.ints, n)
}

// FreeInts returns an int slice to the arena under the same ownership
// contract as FreeFloats.
func (a *Arena) FreeInts(idx []int) {
	if a == nil {
		a = Shared()
	}
	free(&a.ints, idx, false)
}

// Int64s returns an int64 slice of length n (the int tails of gathered
// and padded columns).
func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		a = Shared()
	}
	return alloc[int64](&a.int64s, n)
}

// FreeInt64s returns an int64 slice to the arena.
func (a *Arena) FreeInt64s(xs []int64) {
	if a == nil {
		a = Shared()
	}
	free(&a.int64s, xs, false)
}

// Strings returns a string slice of length n. Recycled buffers come back
// zeroed (FreeStrings clears them), so every element is the empty string.
func (a *Arena) Strings(n int) []string {
	if a == nil {
		a = Shared()
	}
	return alloc[string](&a.strings, n)
}

// FreeStrings returns a string slice to the arena, clearing it first so
// the pool does not pin the released values against the collector.
func (a *Arena) FreeStrings(ss []string) {
	if a == nil {
		a = Shared()
	}
	free(&a.strings, ss, true)
}
