package exec

import (
	"sync"
	"sync/atomic"
)

// This file carries the observability side of the streaming pipeline:
// per-stage batch/row counters and peak-held-bytes watermarks. The
// streaming operators in internal/sql report into a PipelineStats; the
// CLIs print the snapshot next to the tenant metrics so the
// max-per-stage memory shape of a streamed statement is visible.

// StageStats is the snapshot of one pipeline stage.
type StageStats struct {
	Name      string // operator label, e.g. "scan(t)", "join", "group"
	Batches   int64  // morsels emitted
	Rows      int64  // rows emitted across all morsels
	PeakBytes int64  // high-water mark of bytes held by the stage at once
}

// PipelineStats collects the per-stage counters of one streamed
// statement. Stages register in pipeline order; Snapshot returns them
// in that order.
type PipelineStats struct {
	mu     sync.Mutex
	stages []*StageTracker
}

// NewPipelineStats returns an empty collector.
func NewPipelineStats() *PipelineStats { return &PipelineStats{} }

// Stage registers a named stage and returns its tracker. Nil-safe: on a
// nil collector it returns a nil tracker, whose methods are no-ops, so
// operators report unconditionally.
func (p *PipelineStats) Stage(name string) *StageTracker {
	if p == nil {
		return nil
	}
	t := &StageTracker{name: name}
	p.mu.Lock()
	p.stages = append(p.stages, t)
	p.mu.Unlock()
	return t
}

// Snapshot returns the per-stage stats in registration order.
func (p *PipelineStats) Snapshot() []StageStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageStats, len(p.stages))
	for i, t := range p.stages {
		out[i] = StageStats{
			Name:      t.name,
			Batches:   t.batches.Load(),
			Rows:      t.rows.Load(),
			PeakBytes: t.peak.Load(),
		}
	}
	return out
}

// StageTracker is the live counter set of one stage. All methods are
// nil-safe no-ops so un-instrumented runs cost nothing.
type StageTracker struct {
	name    string
	batches atomic.Int64
	rows    atomic.Int64
	held    atomic.Int64 // bytes currently held by the stage
	peak    atomic.Int64 // high-water mark of held
}

// Batch records one emitted morsel of the given row count and byte
// size, holding the bytes until Unhold.
func (t *StageTracker) Batch(rows int, bytes int64) {
	if t == nil {
		return
	}
	t.batches.Add(1)
	t.rows.Add(int64(rows))
	t.Hold(bytes)
}

// Hold charges bytes the stage keeps resident (batch buffers in flight,
// a breaker's build state) and raises the peak watermark.
func (t *StageTracker) Hold(bytes int64) {
	if t == nil || bytes == 0 {
		return
	}
	maxInt64(&t.peak, t.held.Add(bytes))
}

// Unhold releases bytes previously recorded by Hold or Batch.
func (t *StageTracker) Unhold(bytes int64) {
	if t == nil || bytes == 0 {
		return
	}
	t.held.Add(-bytes)
}
