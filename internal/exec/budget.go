package exec

import (
	"errors"
	"fmt"
)

// ErrMemoryBudget is the sentinel all memory-budget failures match:
// errors.Is(err, exec.ErrMemoryBudget) is true for every error produced
// by a budgeted arena that could not satisfy an allocation. The concrete
// error is always a *MemoryBudgetError carrying the tenant and the byte
// counts of the failed request.
var ErrMemoryBudget = errors.New("exec: memory budget exceeded")

// MemoryBudgetError reports one allocation a budgeted tenant arena
// rejected: admitting Requested more bytes would have pushed the
// tenant's live total past its budget.
type MemoryBudgetError struct {
	// Tenant is the name of the tenant whose budget was exhausted.
	Tenant string
	// Requested is the size of the rejected allocation in bytes.
	Requested int64
	// Live is the tenant's live byte count at the time of the rejection.
	Live int64
	// Budget is the tenant's cap in bytes.
	Budget int64
}

// Error renders the failure with its byte arithmetic.
func (e *MemoryBudgetError) Error() string {
	return fmt.Sprintf("exec: tenant %q memory budget exceeded: %d live + %d requested > %d budget",
		e.Tenant, e.Live, e.Requested, e.Budget)
}

// Unwrap makes errors.Is(err, ErrMemoryBudget) match.
func (e *MemoryBudgetError) Unwrap() error { return ErrMemoryBudget }

// budgetPanic is the value a budgeted arena panics with when an
// allocation would exceed the tenant's cap. The kernels' infallible
// allocation signatures (Arena.Floats and friends) cannot return errors,
// so the overrun unwinds the kernel as a panic of this private type and
// is converted back into the typed error by CatchBudget at the nearest
// error-returning API boundary — bat/batlin/rel/core/sql callers observe
// an error, never a panic. Unrelated panics pass through untouched.
type budgetPanic struct{ err *MemoryBudgetError }

// CatchBudget converts a memory-budget overrun unwinding through the
// caller into its typed error. Every error-returning entry point above
// the kernels installs it:
//
//	func Op(...) (res *T, err error) {
//		defer exec.CatchBudget(&err)
//		...
//	}
//
// Panics that are not budget overruns are re-raised unchanged. The
// parallel drivers (Ctx.ParallelFor, Ctx.Reduce) forward worker panics
// to the calling goroutine, so a budget overrun inside a parallel
// section reaches the caller's CatchBudget like any serial one.
func CatchBudget(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if bp, ok := r.(budgetPanic); ok {
		*err = bp.err
		return
	}
	panic(r)
}
