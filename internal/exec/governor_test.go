package exec

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// allocBudgeted runs fn under CatchBudget and returns the converted
// error, the way every error-returning layer above the kernels does.
func allocBudgeted(fn func()) (err error) {
	defer CatchBudget(&err)
	fn()
	return nil
}

// TestAccountedArenaCharges checks the byte accounting of a budgeted
// tenant arena: live/peak watermarks, pool hit/miss/free counters, and
// the typed error when the budget cannot be met.
func TestAccountedArenaCharges(t *testing.T) {
	g := NewGovernor(0, 0)
	tn := g.Tenant("acct", 64*1024)
	a := tn.NewArena()
	defer a.Close()

	f := a.Floats(1000) // rounds up to the 1024-cap class: 8 KiB
	if got := tn.LiveBytes(); got != 8192 {
		t.Fatalf("live after Floats(1000) = %d, want 8192", got)
	}
	if got := tn.PeakBytes(); got != 8192 {
		t.Fatalf("peak = %d, want 8192", got)
	}
	a.FreeFloats(f)
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live after free = %d, want 0", got)
	}
	if got := tn.PeakBytes(); got != 8192 {
		t.Fatalf("peak after free = %d, want 8192 (high-water mark)", got)
	}
	st := tn.Stats()
	if st.Floats.Allocs != 1 || st.Floats.Frees != 1 || st.Floats.PoolMisses != 1 {
		t.Fatalf("float counters = %+v, want 1 alloc / 1 free / 1 miss", st.Floats)
	}

	// The freed buffer comes back from the pool (a hit) and is charged
	// again on every round trip. sync.Pool deliberately drops a fraction
	// of Puts under the race detector, so the hit is asserted with a
	// bounded retry rather than an exact count.
	hit := false
	for i := 0; i < 64 && !hit; i++ {
		f := a.Floats(1000)
		if got := tn.LiveBytes(); got != 8192 {
			t.Fatalf("live after re-alloc = %d, want 8192", got)
		}
		hit = tn.Stats().Floats.PoolHits > 0
		a.FreeFloats(f)
	}
	if !hit {
		t.Fatal("recycled buffer never came back as a pool hit")
	}

	f2 := a.Floats(1000)

	// An allocation past the cap returns the typed error through
	// CatchBudget instead of panicking out.
	err := allocBudgeted(func() { a.Floats(8192) }) // 64 KiB on top of 8 KiB live
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-budget alloc error = %v, want ErrMemoryBudget", err)
	}
	var be *MemoryBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *MemoryBudgetError", err)
	}
	if be.Tenant != "acct" || be.Requested != 64*1024 || be.Live != 8192 || be.Budget != 64*1024 {
		t.Fatalf("budget error fields = %+v", be)
	}
	// The failed allocation must not leak charge.
	if got := tn.LiveBytes(); got != 8192 {
		t.Fatalf("live after failed alloc = %d, want 8192", got)
	}
	a.FreeFloats(f2)
}

// TestArenaOriginVerification is the cross-arena migration regression:
// freeing a buffer into an accounted arena that did not allocate it
// must not corrupt the receiving tenant's byte count or pool the
// foreign buffer — the charge is released against the true owner
// through the owner registry, and a second free anywhere is a no-op.
func TestArenaOriginVerification(t *testing.T) {
	g := NewGovernor(0, 0)
	t1 := g.Tenant("owner", 0)
	t2 := g.Tenant("bystander", 0)
	a1 := t1.NewArena()
	a2 := t2.NewArena()
	defer a1.Close()
	defer a2.Close()

	buf := a1.Floats(64) // 512 bytes charged to t1
	if t1.LiveBytes() != 512 || t2.LiveBytes() != 0 {
		t.Fatalf("live after alloc: t1=%d t2=%d", t1.LiveBytes(), t2.LiveBytes())
	}

	// Free into the wrong accounted arena: the bystander's books stay
	// untouched; the owner is uncharged immediately (the free counts on
	// the owner's tenant, not the receiver's).
	a2.FreeFloats(buf)
	if got := t2.LiveBytes(); got != 0 {
		t.Fatalf("bystander live went to %d on a foreign free", got)
	}
	if got := t2.Stats().Floats.Frees; got != 0 {
		t.Fatalf("bystander counted %d frees for a foreign buffer", got)
	}
	if got := t1.LiveBytes(); got != 0 {
		t.Fatalf("owner live = %d after foreign free, want 0", got)
	}
	if got := t1.Stats().Floats.Frees; got != 1 {
		t.Fatalf("owner counted %d frees after foreign free, want 1", got)
	}
	// The foreign buffer must not have entered a2's pools: a fresh
	// allocation there is a miss, not a hit on smuggled memory.
	x := a2.Floats(64)
	if got := a2.Tenant().Stats().Floats.PoolHits; got != 0 {
		t.Fatalf("bystander pool served %d hits after foreign free", got)
	}
	a2.FreeFloats(x)

	// A buffer make()d outside any arena is ignored entirely.
	a1.FreeFloats(make([]float64, 64))
	if got := t1.LiveBytes(); got != 0 {
		t.Fatalf("owner live = %d after stray free, want 0", got)
	}

	// The buffer already left the ledger with the foreign free, so a
	// later free by the owner — a double free — is a no-op.
	a1.FreeFloats(buf)
	if got := t1.LiveBytes(); got != 0 {
		t.Fatalf("owner live = %d after double free, want 0", got)
	}
	if got := t1.Stats().Floats.Frees; got != 1 {
		t.Fatalf("owner counted %d frees after double free, want 1", got)
	}
}

// TestArenaCloseReleasesOutstanding checks the end-of-query contract:
// Close uncharges everything the arena still holds, so an abandoned or
// failed query cannot strand bytes against its tenant's budget.
func TestArenaCloseReleasesOutstanding(t *testing.T) {
	g := NewGovernor(0, 0)
	tn := g.Tenant("closer", 0)
	a := tn.NewArena()
	a.Floats(64)
	a.Ints(64)
	a.Int64s(64)
	a.Strings(64)
	if got := tn.LiveBytes(); got == 0 {
		t.Fatal("nothing charged before Close")
	}
	a.Close()
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live after Close = %d, want 0", got)
	}
	a.Close() // idempotent
	// Frees and allocations after Close are uncharged no-ops.
	f := a.Floats(64)
	a.FreeFloats(f)
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live after post-Close traffic = %d, want 0", got)
	}
}

// TestTenantIsolationStress runs two tenants with distinct budgets
// concurrently under -race and asserts their accounting never bleeds
// into each other: each tenant's peak stays under its own budget, and
// every tenant drains back to zero live bytes once its queries close.
func TestTenantIsolationStress(t *testing.T) {
	g := NewGovernor(0, 0)
	const (
		bigBudget   = 1 << 20
		smallBudget = 16 << 10
	)
	big := g.Tenant("big", bigBudget)
	small := g.Tenant("small", smallBudget)

	var wg sync.WaitGroup
	var overruns sync.Map
	for _, tc := range []struct {
		tenant *Tenant
		size   int
	}{
		{big, 8192},  // 64 KiB per buffer: fits big, would bust small
		{big, 1024},  //
		{small, 512}, // 4 KiB per buffer: fits small
		{small, 512},
	} {
		wg.Add(1)
		go func(tn *Tenant, size int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				a := tn.NewArena()
				err := allocBudgeted(func() {
					f1 := a.Floats(size)
					f2 := a.Floats(size)
					a.FreeFloats(f1)
					a.FreeFloats(f2)
				})
				if err != nil {
					if !errors.Is(err, ErrMemoryBudget) {
						t.Errorf("tenant %s: unexpected error %v", tn.Name(), err)
					}
					overruns.Store(tn.Name(), true)
				}
				a.Close()
			}
		}(tc.tenant, tc.size)
	}
	wg.Wait()

	if got := big.LiveBytes(); got != 0 {
		t.Errorf("big tenant live after drain = %d, want 0", got)
	}
	if got := small.LiveBytes(); got != 0 {
		t.Errorf("small tenant live after drain = %d, want 0", got)
	}
	if got := big.PeakBytes(); got > bigBudget {
		t.Errorf("big tenant peak %d exceeded its budget %d", got, bigBudget)
	}
	if got := small.PeakBytes(); got > smallBudget {
		t.Errorf("small tenant peak %d exceeded its budget %d", got, smallBudget)
	}
	// The big tenant's traffic (two 64 KiB buffers in flight) would
	// overrun the small budget many times over; its own budget must
	// never have rejected it, proving the books are separate.
	if _, ok := overruns.Load("big"); ok {
		t.Error("big tenant hit its budget — accounting bled between tenants")
	}
}

// waitUntil polls cond up to a deadline; admission tests use it instead
// of fixed sleeps for the positive direction.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionQueueing checks the governor's reservation-based
// admission: a query whose declared budget does not fit under the
// global cap queues until a running query releases its reservation.
func TestAdmissionQueueing(t *testing.T) {
	g := NewGovernor(1000, 0)
	release1 := g.Admit(600)

	admitted := make(chan struct{})
	go func() {
		release2 := g.Admit(600)
		close(admitted)
		release2()
	}()

	waitUntil(t, 2*time.Second, func() bool { return g.Metrics().Queued == 1 },
		"second query never queued")
	select {
	case <-admitted:
		t.Fatal("600+600 admitted under a cap of 1000")
	case <-time.After(50 * time.Millisecond):
	}

	release1()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("queued query not admitted after release")
	}
	release1() // idempotent
	m := g.Metrics()
	if m.Admitted != 2 {
		t.Fatalf("Admitted = %d, want 2", m.Admitted)
	}
	waitUntil(t, 2*time.Second, func() bool {
		m := g.Metrics()
		return m.Running == 0 && m.ReservedBytes == 0 && m.Queued == 0
	}, "governor did not drain to idle")
}

// TestAdmissionOversizedQuery checks the no-deadlock rule: a budget
// larger than the global cap is admitted when it would run alone.
func TestAdmissionOversizedQuery(t *testing.T) {
	g := NewGovernor(1000, 0)
	done := make(chan struct{})
	go func() {
		release := g.Admit(5000)
		release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("oversized query deadlocked on an idle governor")
	}
}

// TestAdmissionMaxQueries checks the concurrency slot limit.
func TestAdmissionMaxQueries(t *testing.T) {
	g := NewGovernor(0, 1)
	release1 := g.Admit(0)
	admitted := make(chan struct{})
	go func() {
		release2 := g.Admit(0)
		close(admitted)
		release2()
	}()
	waitUntil(t, 2*time.Second, func() bool { return g.Metrics().Queued == 1 },
		"second query never queued on the slot limit")
	release1()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("slot not handed over on release")
	}
}

// TestGovernorMetricsTenants checks the snapshot shape: tenants sorted
// by name with their budgets and counters.
func TestGovernorMetricsTenants(t *testing.T) {
	g := NewGovernor(123, 4)
	g.Tenant("zeta", 100)
	g.Tenant("alpha", 8192)
	a := g.Tenant("alpha", 0).NewArena()
	a.FreeFloats(a.Floats(64))
	a.Close()

	m := g.Metrics()
	if m.GlobalCapBytes != 123 {
		t.Fatalf("GlobalCapBytes = %d", m.GlobalCapBytes)
	}
	if len(m.Tenants) != 2 || m.Tenants[0].Tenant != "alpha" || m.Tenants[1].Tenant != "zeta" {
		t.Fatalf("tenants = %+v, want [alpha zeta]", m.Tenants)
	}
	alpha := m.Tenants[0]
	if alpha.BudgetBytes != 8192 {
		t.Fatalf("alpha budget = %d, want 8192 (second Tenant(0) call must not clear it)", alpha.BudgetBytes)
	}
	if tot := alpha.Total(); tot.Allocs != 1 || tot.Frees != 1 {
		t.Fatalf("alpha totals = %+v", tot)
	}
}

// TestArenaForResolution checks the single resolution point core and
// sql build their per-invocation arenas through: ungoverned yields nil,
// an empty tenant name lands on DefaultTenant, zero budget preserves an
// established cap, and a negative budget explicitly clears it.
func TestArenaForResolution(t *testing.T) {
	g := NewGovernor(0, 0)
	if a := g.ArenaFor("", 0); a != nil {
		t.Fatal("ungoverned ArenaFor returned an accounted arena")
	}
	a := g.ArenaFor("", 4096)
	if tn := a.Tenant(); tn == nil || tn.Name() != DefaultTenant {
		t.Fatalf("empty tenant resolved to %v, want %q", a.Tenant(), DefaultTenant)
	}
	if b := g.Tenant(DefaultTenant, 0).Budget(); b != 4096 {
		t.Fatalf("budget = %d, want 4096", b)
	}
	a.Close()

	// Zero keeps the cap (the tenant must be named: an empty name with
	// zero budget is the ungoverned case): an over-budget allocation
	// still fails.
	a = g.ArenaFor(DefaultTenant, 0)
	if err := allocBudgeted(func() { a.Floats(4096) }); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("alloc under preserved cap: err = %v, want ErrMemoryBudget", err)
	}
	a.Close()

	// Negative clears the cap: the same allocation now succeeds and the
	// accounting keeps running.
	a = g.ArenaFor("", -1)
	if b := a.Tenant().Budget(); b != 0 {
		t.Fatalf("budget after ArenaFor(-1) = %d, want 0 (unlimited)", b)
	}
	if err := allocBudgeted(func() { a.Floats(4096) }); err != nil {
		t.Fatalf("alloc after cap removal failed: %v", err)
	}
	if a.Tenant().LiveBytes() == 0 {
		t.Fatal("accounting stopped after cap removal")
	}
	a.Close()
}

// TestBudgetRejectionAboveLedgerRange checks that an oversized request
// (beyond the pooled size classes) is rejected by the budget check with
// no counter movement — the charge happens before any allocation, so a
// rejected request commits nothing.
func TestBudgetRejectionAboveLedgerRange(t *testing.T) {
	g := NewGovernor(0, 0)
	tn := g.Tenant("huge", 1<<20)
	a := tn.NewArena()
	err := allocBudgeted(func() { a.Floats((1 << 24) + 1) }) // above maxPoolShift
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	st := tn.Stats()
	if st.LiveBytes != 0 || st.Floats.Allocs != 0 {
		t.Fatalf("rejected oversized alloc moved counters: %+v", st)
	}
	a.Close()
}
