package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/exec"
)

// TileEdge is the default tile edge of a BlockMatrix: 256 float64s
// (512 KiB per full tile — two tiles and an output tile fit a typical
// L2) and a multiple of the 64-element cache block the flat kernels
// use, so a tiled kernel walking k in ascending tile order visits
// elements in exactly the flat kernel's order. Sixteen tile rows span
// one 4096-row morsel, so relations materialize into tiles on
// morsel-aligned strides.
const TileEdge = 256

// BlockMatrix is a dense Rows×Cols matrix stored as a grid of
// Edge×Edge tiles (edge tiles are cut to size, never padded). Each
// tile is one arena allocation charged individually, so a huge matrix
// never needs — and never charges — one contiguous buffer, and a tile
// is the unit of out-of-core residency: with EnableSpill, tiles past
// the residency cap are staged to the statement's exec.Spill scratch
// directory and re-loaded (re-charged) on demand.
//
// Tiles are allocated lazily: a tile that was never pinned for
// writing reads as zeros and occupies no memory. All tile state is
// guarded by one mutex; Pin/Unpin are safe to call from ParallelFor
// workers. The residency cap is advisory — a Pin never fails for lack
// of an evictable tile, it just overshoots the cap until pins drop.
type BlockMatrix struct {
	Rows, Cols int
	Edge       int
	tr, tc     int

	mu          sync.Mutex
	tiles       []blockTile
	sp          *exec.Spill
	maxResident int
	resident    int
	ioBuf       []byte // scratch for tile (de)serialization, reused under mu
}

type blockTile struct {
	data  []float64 // nil when not resident
	path  string    // on-disk copy, "" until first eviction
	pins  int
	dirty bool // resident copy newer than the on-disk copy
}

// NewBlock returns a zero Rows×Cols block matrix with the default
// tile edge.
func NewBlock(rows, cols int) *BlockMatrix {
	return NewBlockEdge(rows, cols, TileEdge)
}

// NewBlockEdge returns a zero block matrix with an explicit tile
// edge (tests use small edges to exercise many-tile grids on small
// inputs). The edge must be positive.
func NewBlockEdge(rows, cols, edge int) *BlockMatrix {
	if edge <= 0 {
		panic(fmt.Sprintf("matrix: block edge %d", edge))
	}
	tr := (rows + edge - 1) / edge
	tc := (cols + edge - 1) / edge
	return &BlockMatrix{
		Rows: rows, Cols: cols, Edge: edge,
		tr: tr, tc: tc,
		tiles:       make([]blockTile, tr*tc),
		maxResident: tr * tc,
	}
}

// TileRows and TileCols return the tile-grid shape.
func (b *BlockMatrix) TileRows() int { return b.tr }

// TileCols returns the number of tile columns.
func (b *BlockMatrix) TileCols() int { return b.tc }

// TileDims returns the row and column count of tile (ti, tj); edge
// tiles are smaller than Edge.
func (b *BlockMatrix) TileDims(ti, tj int) (h, w int) {
	h = min(b.Edge, b.Rows-ti*b.Edge)
	w = min(b.Edge, b.Cols-tj*b.Edge)
	return h, w
}

// EnableSpill bounds the matrix to at most maxResident resident tiles
// (clamped to ≥ 1), staging evicted tiles through the spill manager's
// scratch directory. Spilled bytes and partition counts are reported
// through Ctx.NoteSpill at eviction time.
func (b *BlockMatrix) EnableSpill(sp *exec.Spill, maxResident int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sp = sp
	b.maxResident = max(maxResident, 1)
}

// SpillConfig returns the spill manager and residency cap, so derived
// matrices (kernel outputs) can inherit the out-of-core regime.
func (b *BlockMatrix) SpillConfig() (*exec.Spill, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sp, b.maxResident
}

// Resident returns the number of currently resident tiles.
func (b *BlockMatrix) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.resident
}

// Pin loads tile (ti, tj) for reading and writing and returns its
// row-major h×w data. The tile stays resident until the matching
// Unpin. Pinning may evict unpinned tiles of this matrix to honor the
// residency cap.
func (b *BlockMatrix) Pin(c *exec.Ctx, ti, tj int) ([]float64, error) {
	return b.pin(c, ti, tj, true)
}

// PinRead is Pin for read-only access: the tile is not marked dirty,
// so a later eviction can drop it without rewriting its file.
func (b *BlockMatrix) PinRead(c *exec.Ctx, ti, tj int) ([]float64, error) {
	return b.pin(c, ti, tj, false)
}

func (b *BlockMatrix) pin(c *exec.Ctx, ti, tj int, write bool) ([]float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := &b.tiles[ti*b.tc+tj]
	if t.data == nil {
		h, w := b.TileDims(ti, tj)
		if err := b.evictLocked(c, b.maxResident-1); err != nil {
			return nil, err
		}
		t.data = c.Arena().FloatsZero(h * w)
		b.resident++
		if t.path != "" {
			if err := b.readTileLocked(t); err != nil {
				c.Arena().FreeFloats(t.data)
				t.data = nil
				b.resident--
				return nil, err
			}
		}
	}
	t.pins++
	if write {
		t.dirty = true
	}
	return t.data, nil
}

// Unpin releases one pin on tile (ti, tj).
func (b *BlockMatrix) Unpin(ti, tj int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := &b.tiles[ti*b.tc+tj]
	if t.pins <= 0 {
		panic("matrix: unpin of unpinned tile")
	}
	t.pins--
}

// evictLocked stages unpinned tiles to disk until at most target
// tiles are resident (or nothing more is evictable). No-op without a
// spill manager — unbounded residency is the in-memory regime.
func (b *BlockMatrix) evictLocked(c *exec.Ctx, target int) error {
	if b.sp == nil {
		return nil
	}
	for k := range b.tiles {
		if b.resident <= target {
			return nil
		}
		t := &b.tiles[k]
		if t.data == nil || t.pins > 0 {
			continue
		}
		if t.dirty || t.path == "" {
			if t.path == "" {
				p, err := b.sp.Path("tile")
				if err != nil {
					return err
				}
				t.path = p
				c.NoteSpill(int64(len(t.data)*8), 1)
			} else {
				c.NoteSpill(int64(len(t.data)*8), 0)
			}
			if err := b.writeTileLocked(t); err != nil {
				return err
			}
			t.dirty = false
		}
		c.Arena().FreeFloats(t.data)
		t.data = nil
		b.resident--
	}
	return nil
}

func (b *BlockMatrix) writeTileLocked(t *blockTile) error {
	n := len(t.data) * 8
	if cap(b.ioBuf) < n {
		b.ioBuf = make([]byte, n)
	}
	buf := b.ioBuf[:n]
	for i, v := range t.data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := os.WriteFile(t.path, buf, 0o600); err != nil {
		return fmt.Errorf("matrix: spill tile: %w", err)
	}
	return nil
}

func (b *BlockMatrix) readTileLocked(t *blockTile) error {
	buf, err := os.ReadFile(t.path)
	if err != nil {
		return fmt.Errorf("matrix: load tile: %w", err)
	}
	if len(buf) != len(t.data)*8 {
		return fmt.Errorf("matrix: tile %s: %d bytes, want %d", t.path, len(buf), len(t.data)*8)
	}
	for i := range t.data {
		t.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// At reads element (i, j), paying a pin/unpin round trip; fine for
// tests and spot checks, wrong for kernels (pin the tile instead).
// A tile that was never written reads as zero without materializing.
func (b *BlockMatrix) At(c *exec.Ctx, i, j int) (float64, error) {
	ti, tj := i/b.Edge, j/b.Edge
	b.mu.Lock()
	t := &b.tiles[ti*b.tc+tj]
	if t.data == nil && t.path == "" {
		b.mu.Unlock()
		return 0, nil
	}
	b.mu.Unlock()
	_, w := b.TileDims(ti, tj)
	data, err := b.PinRead(c, ti, tj)
	if err != nil {
		return 0, err
	}
	v := data[(i-ti*b.Edge)*w+(j-tj*b.Edge)]
	b.Unpin(ti, tj)
	return v, nil
}

// Set writes element (i, j) through a pin/unpin round trip.
func (b *BlockMatrix) Set(c *exec.Ctx, i, j int, v float64) error {
	ti, tj := i/b.Edge, j/b.Edge
	_, w := b.TileDims(ti, tj)
	data, err := b.Pin(c, ti, tj)
	if err != nil {
		return err
	}
	data[(i-ti*b.Edge)*w+(j-tj*b.Edge)] = v
	b.Unpin(ti, tj)
	return nil
}

// BlockOf copies a flat matrix into a block matrix with the given
// tile edge (≤ 0 selects TileEdge), decomposing the tile copies over
// the context's workers.
func BlockOf(c *exec.Ctx, m *Matrix, edge int) (*BlockMatrix, error) {
	if edge <= 0 {
		edge = TileEdge
	}
	b := NewBlockEdge(m.Rows, m.Cols, edge)
	var firstErr error
	var errMu sync.Mutex
	c.ParallelFor(b.tr*b.tc, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			ti, tj := k/b.tc, k%b.tc
			h, w := b.TileDims(ti, tj)
			data, err := b.Pin(c, ti, tj)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for r := 0; r < h; r++ {
				src := m.Data[(ti*edge+r)*m.Cols+tj*edge:]
				copy(data[r*w:(r+1)*w], src[:w])
			}
			b.Unpin(ti, tj)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return b, nil
}

// Flatten copies the block matrix into one contiguous row-major
// matrix whose Data is drawn from the context's arena (the same
// convention as core's relation→matrix copies; callers that are done
// with the result hand Data back with FreeFloats).
func (b *BlockMatrix) Flatten(c *exec.Ctx) (*Matrix, error) {
	out := &Matrix{Rows: b.Rows, Cols: b.Cols, Data: c.Arena().FloatsZero(b.Rows * b.Cols)}
	var firstErr error
	var errMu sync.Mutex
	c.ParallelFor(b.tr*b.tc, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			ti, tj := k/b.tc, k%b.tc
			b.mu.Lock()
			virgin := b.tiles[k].data == nil && b.tiles[k].path == ""
			b.mu.Unlock()
			if virgin {
				continue // never written: stays zero
			}
			h, w := b.TileDims(ti, tj)
			data, err := b.PinRead(c, ti, tj)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for r := 0; r < h; r++ {
				copy(out.Data[(ti*b.Edge+r)*b.Cols+tj*b.Edge:][:w], data[r*w:(r+1)*w])
			}
			b.Unpin(ti, tj)
		}
	})
	if firstErr != nil {
		c.Arena().FreeFloats(out.Data)
		return nil, firstErr
	}
	return out, nil
}

// Free returns every resident tile's buffer to the arena and deletes
// staged tile files. The matrix must not be used afterwards.
func (b *BlockMatrix) Free(c *exec.Ctx) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.tiles {
		t := &b.tiles[k]
		if t.data != nil {
			c.Arena().FreeFloats(t.data)
			t.data = nil
			b.resident--
		}
		if t.path != "" {
			os.Remove(t.path)
			t.path = ""
		}
	}
}
