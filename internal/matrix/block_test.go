package matrix

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exec"
)

// TestTileGridShapes checks grid arithmetic on non-divisible shapes.
func TestTileGridShapes(t *testing.T) {
	b := NewBlockEdge(7, 5, 3)
	if b.TileRows() != 3 || b.TileCols() != 2 {
		t.Fatalf("grid = %dx%d, want 3x2", b.TileRows(), b.TileCols())
	}
	if h, w := b.TileDims(0, 0); h != 3 || w != 3 {
		t.Fatalf("tile(0,0) = %dx%d, want 3x3", h, w)
	}
	if h, w := b.TileDims(2, 1); h != 1 || w != 2 {
		t.Fatalf("tile(2,1) = %dx%d, want 1x2", h, w)
	}
}

// TestTileRoundTrip: BlockOf → Flatten must reproduce the flat matrix
// exactly for ragged tile grids, and At must agree element-wise.
func TestTileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := exec.New(4)
	for _, edge := range []int{1, 2, 7, 16, 64} {
		m := New(13, 29)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		b, err := BlockOf(c, m, edge)
		if err != nil {
			t.Fatal(err)
		}
		back, err := b.Flatten(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if back.At(i, j) != m.At(i, j) {
					t.Fatalf("edge %d: flatten (%d,%d) = %v, want %v", edge, i, j, back.At(i, j), m.At(i, j))
				}
				v, err := b.At(c, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if v != m.At(i, j) {
					t.Fatalf("edge %d: At(%d,%d) = %v, want %v", edge, i, j, v, m.At(i, j))
				}
			}
		}
		c.Arena().FreeFloats(back.Data)
		b.Free(c)
	}
}

// TestTileLazyZero: tiles never written read as zero and stay
// unmaterialized.
func TestTileLazyZero(t *testing.T) {
	c := exec.New(1)
	b := NewBlockEdge(100, 100, 10)
	if v, err := b.At(c, 57, 31); err != nil || v != 0 {
		t.Fatalf("virgin At = %v, %v", v, err)
	}
	if b.Resident() != 0 {
		t.Fatalf("virgin read materialized %d tiles", b.Resident())
	}
	if err := b.Set(c, 57, 31, 4.5); err != nil {
		t.Fatal(err)
	}
	if b.Resident() != 1 {
		t.Fatalf("after one Set: %d resident tiles, want 1", b.Resident())
	}
	b.Free(c)
}

// TestTileSpillEviction: with a residency cap, writes spill older
// tiles to disk, reads page them back bit-exactly, and the cap holds
// whenever no tile is pinned.
func TestTileSpillEviction(t *testing.T) {
	dir := t.TempDir()
	sp := exec.NewSpill(dir, 1)
	defer sp.Cleanup()
	c := exec.New(2).WithSpill(sp)

	const edge, n = 4, 32 // 8×8 grid, 64 tiles
	b := NewBlockEdge(n, n, edge)
	b.EnableSpill(sp, 5)
	rng := rand.New(rand.NewSource(9))
	want := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want.Set(i, j, rng.NormFloat64())
			if err := b.Set(c, i, j, want.At(i, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r := b.Resident(); r > 5 {
		t.Fatalf("%d resident tiles, cap 5", r)
	}
	// Page everything back (twice: a clean reload must not rewrite).
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v, err := b.At(c, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if v != want.At(i, j) {
					t.Fatalf("round %d: At(%d,%d) = %v, want %v", round, i, j, v, want.At(i, j))
				}
			}
		}
	}
	if sp.Stats().SpilledBytes == 0 {
		t.Fatal("no bytes reported spilled despite eviction")
	}
	b.Free(c)
	spillDir, err := sp.Dir()
	if err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(spillDir, "tile-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("Free left %d tile files behind", len(left))
	}
	if _, err := os.Stat(spillDir); err != nil {
		t.Fatalf("scratch dir gone before Cleanup: %v", err)
	}
}
