package matrix

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows = %v", m)
	}
	c := FromColumns([][]float64{{1, 3}, {2, 4}})
	if !ApproxEqual(m, c, 0) {
		t.Errorf("FromColumns != FromRows: %v vs %v", c, m)
	}
	if FromRows(nil).Rows != 0 || FromColumns(nil).Cols != 0 {
		t.Error("empty constructors broken")
	}
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Errorf("Identity = %v", id)
	}
	d := Diag([]float64{5, 6})
	if d.At(0, 0) != 5 || d.At(1, 1) != 6 || d.At(0, 1) != 0 {
		t.Errorf("Diag = %v", d)
	}
}

func TestRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	m.Set(0, 2, 9)
	if m.At(0, 2) != 9 {
		t.Error("Set/At broken")
	}
	if r := m.Row(1); r[0] != 4 || len(r) != 3 {
		t.Errorf("Row = %v", r)
	}
	if c := m.Column(1); c[0] != 2 || c[1] != 5 {
		t.Errorf("Column = %v", c)
	}
	cols := m.Columns()
	if len(cols) != 3 || cols[2][1] != 6 {
		t.Errorf("Columns = %v", cols)
	}
	cl := m.Clone()
	cl.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Error("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatalf("T = %v", tr)
	}
	if !ApproxEqual(tr.T(), m, 0) {
		t.Error("double transpose != identity")
	}
}

func TestElementwise(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b); got.At(1, 1) != 44 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got.At(0, 0) != 9 {
		t.Errorf("Sub = %v", got)
	}
	if got := EMU(a, b); got.At(1, 0) != 90 {
		t.Errorf("EMU = %v", got)
	}
	if got := a.Scale(2); got.At(0, 1) != 4 {
		t.Errorf("Scale = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add of mismatched shapes should panic")
		}
	}()
	Add(New(1, 2), New(2, 1))
}

func TestConcat(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	c := Concat(a, b)
	if c.Rows != 2 || c.Cols != 3 || c.At(1, 2) != 6 || c.At(1, 0) != 2 {
		t.Fatalf("Concat = %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("Concat of mismatched rows should panic")
		}
	}()
	Concat(a, New(3, 1))
}

func TestPredicates(t *testing.T) {
	s := FromRows([][]float64{{2, 1}, {1, 3}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix not recognized")
	}
	ns := FromRows([][]float64{{2, 1}, {0, 3}})
	if ns.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix recognized as symmetric")
	}
	if New(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix cannot be symmetric")
	}
	if s.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", s.MaxAbs())
	}
	if ApproxEqual(s, ns, 0.5) {
		t.Error("ApproxEqual too lax")
	}
	if !ApproxEqual(s, ns, 2.5) {
		t.Error("ApproxEqual too strict")
	}
	if ApproxEqual(s, New(1, 1), 100) {
		t.Error("shape mismatch should not be equal")
	}
}

func TestString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if !strings.Contains(s, "1x2") {
		t.Errorf("String = %q", s)
	}
	big := New(20, 1)
	if !strings.Contains(big.String(), "...") {
		t.Error("large matrix String should truncate")
	}
}

// Property: (A + B)ᵀ = Aᵀ + Bᵀ and A + B = B + A on random matrices.
func TestAddProperties(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 8 {
			return true
		}
		vals = vals[:8]
		for i, v := range vals {
			if v != v || v > 1e150 || v < -1e150 { // NaN/huge guards
				vals[i] = 1
			}
		}
		a := FromRows([][]float64{vals[0:2], vals[2:4]})
		b := FromRows([][]float64{vals[4:6], vals[6:8]})
		lhs := Add(a, b).T()
		rhs := Add(a.T(), b.T())
		comm := Add(b, a)
		return ApproxEqual(lhs, rhs, 0) && ApproxEqual(Add(a, b), comm, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
