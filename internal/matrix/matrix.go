// Package matrix provides the dense two-dimensional array type that the
// matrix algebra operations of the paper (Section 3.2) are defined over,
// together with the elementwise and structural operations whose results do
// not require decompositions (ADD, SUB, EMU, TRA, concatenation). The
// decomposition-based operations live in internal/linalg.
package matrix

import (
	"fmt"
	"math"
)

// Matrix is an n×k dense matrix in row-major order. |m| is Rows (number of
// rows), #m is Cols (number of columns), m[i,j] is At(i,j) — all 1-based in
// the paper, 0-based here.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("matrix: ragged row %d (%d vs %d)", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// FromColumns builds a matrix from column slices (copied).
func FromColumns(cols [][]float64) *Matrix {
	if len(cols) == 0 {
		return New(0, 0)
	}
	m := New(len(cols[0]), len(cols))
	for j, c := range cols {
		if len(c) != m.Rows {
			panic(fmt.Sprintf("matrix: ragged column %d (%d vs %d)", j, len(c), m.Rows))
		}
		for i, v := range c {
			m.Data[i*m.Cols+j] = v
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns the square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Data[i*len(d)+i] = v
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a shared sub-slice (m[i,*]).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Column copies the j-th column out (m[*,j]).
func (m *Matrix) Column(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Columns copies all columns out, the layout BATs use.
func (m *Matrix) Columns() [][]float64 {
	out := make([][]float64, m.Cols)
	for j := range out {
		out[j] = m.Column(j)
	}
	return out
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// T returns the transpose (TRA).
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a + b (ADD).
func Add(a, b *Matrix) *Matrix {
	sameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for k, v := range a.Data {
		out.Data[k] = v + b.Data[k]
	}
	return out
}

// Sub returns a - b (SUB).
func Sub(a, b *Matrix) *Matrix {
	sameShape("sub", a, b)
	out := New(a.Rows, a.Cols)
	for k, v := range a.Data {
		out.Data[k] = v - b.Data[k]
	}
	return out
}

// EMU returns the elementwise (Hadamard) product a ∘ b.
func EMU(a, b *Matrix) *Matrix {
	sameShape("emu", a, b)
	out := New(a.Rows, a.Cols)
	for k, v := range a.Data {
		out.Data[k] = v * b.Data[k]
	}
	return out
}

// Scale returns s * a.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for k, v := range m.Data {
		out.Data[k] = v * s
	}
	return out
}

// Concat returns m ⊕ n: the row-wise concatenation of two matrices with the
// same number of rows (the paper's matrix concatenation, Equation 3).
func Concat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: concat rows %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// ApproxEqual reports whether the matrices match elementwise within tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for k := range a.Data {
		if math.Abs(a.Data[k]-b.Data[k]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d [", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 8; i++ {
		s += fmt.Sprintf("%v", m.Row(i))
		if i < m.Rows-1 {
			s += "; "
		}
	}
	if m.Rows > 8 {
		s += "..."
	}
	return s + "]"
}
