package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bat"
	"repro/internal/competitor/madlib"
	"repro/internal/competitor/rsim"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// journeyCap bounds the number of chains kept after each composition step
// (the paper controls growth with its ≥50-occurrences filter; the cap
// keeps the scaled-down workload deterministic across engines).
const journeyCap = 20000

// legsOf aggregates trips into frequent legs with distance and average
// duration: (ss, es, n, dur, dist).
func legsOf(trips, stations *rel.Relation, minCount float64) (*rel.Relation, error) {
	routes, err := rel.GroupBy(exec.Default(), trips, []string{"start_station", "end_station"},
		[]rel.AggSpec{
			{Func: rel.Count, As: "n"},
			{Func: rel.Avg, Attr: "duration", As: "dur"},
		})
	if err != nil {
		return nil, err
	}
	nCol, _ := routes.Col("n")
	nInt := nCol.Vector().Ints()
	freq := routes.Select(nil, func(i int) bool { return float64(nInt[i]) >= minCount })
	s1, _ := stations.Rename(map[string]string{"code": "c1", "name": "n1", "lat": "lat1", "lon": "lon1"})
	s2, _ := stations.Rename(map[string]string{"code": "c2", "name": "n2", "lat": "lat2", "lon": "lon2"})
	j1, err := rel.HashJoin(nil, freq, s1, []string{"start_station"}, []string{"c1"}, rel.Inner)
	if err != nil {
		return nil, err
	}
	j2, err := rel.HashJoin(nil, j1, s2, []string{"end_station"}, []string{"c2"}, rel.Inner)
	if err != nil {
		return nil, err
	}
	p, err := distancesOf(j2, "lat1", "lon1", "lat2", "lon2", "dur")
	if err != nil {
		return nil, err
	}
	ss, _ := j2.Col("start_station")
	es, _ := j2.Col("end_station")
	nC, _ := j2.Col("n")
	return rel.New("legs", rel.Schema{
		{Name: "ss", Type: bat.Int},
		{Name: "es", Type: bat.Int},
		{Name: "n", Type: bat.Int},
		{Name: "dur", Type: bat.Float},
		{Name: "dist", Type: bat.Float},
	}, []*bat.BAT{ss, es, nC, bat.FromFloats(p.dur), bat.FromFloats(p.dist)})
}

// composeChains joins legs k-1 times: chains of k legs with per-leg
// distances, total duration, and support = min over leg counts.
func composeChains(legs *rel.Relation, k int) (*rel.Relation, error) {
	chain := legs
	var err error
	// chain schema: ss, es, n, dur, dist1..dist_j (dur is the total).
	chain, err = chain.Rename(map[string]string{"dist": "dist1"})
	if err != nil {
		return nil, err
	}
	for j := 2; j <= k; j++ {
		next, err := legs.Rename(map[string]string{
			"ss": "ss_j", "es": "es_j", "n": "n_j", "dur": "dur_j", "dist": fmt.Sprintf("dist%d", j),
		})
		if err != nil {
			return nil, err
		}
		joined, err := rel.HashJoin(nil, chain, next, []string{"es"}, []string{"ss_j"}, rel.Inner)
		if err != nil {
			return nil, err
		}
		// Fold: es <- es_j, dur <- dur+dur_j, n <- min(n, n_j).
		nOld, _ := joined.Col("n")
		nNew, _ := joined.Col("n_j")
		durOld, _ := joined.Col("dur")
		durNew, _ := joined.Col("dur_j")
		esNew, _ := joined.Col("es_j")
		no := nOld.Vector().Ints()
		nn := nNew.Vector().Ints()
		do, _ := durOld.Floats()
		dn, _ := durNew.Floats()
		rows := joined.NumRows()
		nMin := make([]int64, rows)
		durSum := make([]float64, rows)
		for i := 0; i < rows; i++ {
			nMin[i] = no[i]
			if nn[i] < no[i] {
				nMin[i] = nn[i]
			}
			durSum[i] = do[i] + dn[i]
		}
		schema := rel.Schema{
			{Name: "ss", Type: bat.Int},
			{Name: "es", Type: bat.Int},
			{Name: "n", Type: bat.Int},
			{Name: "dur", Type: bat.Float},
		}
		ssC, _ := joined.Col("ss")
		cols := []*bat.BAT{ssC, esNew, bat.FromInts(nMin), bat.FromFloats(durSum)}
		for d := 1; d <= j; d++ {
			name := fmt.Sprintf("dist%d", d)
			c, _ := joined.Col(name)
			schema = append(schema, rel.Attr{Name: name, Type: bat.Float})
			cols = append(cols, c)
		}
		chain, err = rel.New("chains", schema, cols)
		if err != nil {
			return nil, err
		}
		// Keep the most supported chains (the ≥50 filter + cap).
		nC, _ := chain.Col("n")
		ni := nC.Vector().Ints()
		chain = chain.Select(nil, func(i int) bool { return ni[i] >= 50 })
		if chain.NumRows() > journeyCap {
			chain, err = chain.Sort(nil, rel.OrderSpec{Attr: "n", Desc: true})
			if err != nil {
				return nil, err
			}
			chain = chain.Limit(nil, journeyCap)
		}
	}
	return chain, nil
}

// mlrInputs extracts the regression matrix (1, dist1..distk) and target
// (total duration) from a chain relation.
func mlrInputs(chain *rel.Relation, k int) (*matrix.Matrix, []float64, error) {
	n := chain.NumRows()
	a := matrix.New(n, k+1)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 1)
	}
	for d := 1; d <= k; d++ {
		c, err := chain.Col(fmt.Sprintf("dist%d", d))
		if err != nil {
			return nil, nil, err
		}
		f, _ := c.Floats()
		for i := 0; i < n; i++ {
			a.Set(i, d, f[i])
		}
	}
	durC, err := chain.Col("dur")
	if err != nil {
		return nil, nil, err
	}
	dur, _ := durC.Floats()
	return a, dur, nil
}

// JourneysRMA runs the Figure 16 workload: compose journeys of k trips,
// then multiple linear regression, with the matrix part in RMA.
func JourneysRMA(trips, stations *rel.Relation, k int, policy core.Policy) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	legs, err := legsOf(trips, stations, 50)
	if err != nil {
		return res, err
	}
	chain, err := composeChains(legs, k)
	if err != nil {
		return res, err
	}
	if chain.NumRows() <= k+1 {
		return res, fmt.Errorf("bench: only %d chains of length %d", chain.NumRows(), k)
	}
	// Build the A and V relations for the RMA regression.
	n := chain.NumRows()
	id := make([]int64, n)
	ones := make([]float64, n)
	for i := range id {
		id[i] = int64(i)
		ones[i] = 1
	}
	// Coefficient names b0..bk sort like the schema order, which the inv
	// composition requires (see olsRelations).
	schema := rel.Schema{{Name: "i", Type: bat.Int}, {Name: "b0", Type: bat.Float}}
	cols := []*bat.BAT{bat.FromInts(id), bat.FromFloats(ones)}
	for d := 1; d <= k; d++ {
		c, _ := chain.Col(fmt.Sprintf("dist%d", d))
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("b%d", d), Type: bat.Float})
		cols = append(cols, c)
	}
	a := rel.MustNew("A", schema, cols)
	durC, _ := chain.Col("dur")
	v := rel.MustNew("V", rel.Schema{
		{Name: "i2", Type: bat.Int},
		{Name: "dur", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(id), durC})
	res.Prep = time.Since(t0)

	t1 := time.Now()
	opts := &core.Options{Policy: policy, SortMode: core.SortOptimized}
	ata, err := core.Cpd(a, []string{"i"}, a.WithName("A2"), []string{"i"}, opts)
	if err != nil {
		return res, err
	}
	inv, err := core.Inv(ata, []string{"C"}, opts)
	if err != nil {
		return res, err
	}
	atv, err := core.Cpd(a, []string{"i"}, v, []string{"i2"}, opts)
	if err != nil {
		return res, err
	}
	beta, err := core.Mmu(inv, []string{"C"}, atv, []string{"C"}, opts)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	for i := 0; i < beta.NumRows(); i++ {
		if beta.Value(i, 0).S == "b1" {
			res.Check = beta.Value(i, 1).F
		}
	}
	return res, nil
}

// JourneysAIDA: the preparation is purely numeric, so AIDA's relational
// part matches RMA+ (both run on the column engine; Figure 16a shows them
// close); the regression runs on host arrays after a cheap numeric
// boundary crossing.
func JourneysAIDA(trips, stations *rel.Relation, k int) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	legs, err := legsOf(trips, stations, 50)
	if err != nil {
		return res, err
	}
	chain, err := composeChains(legs, k)
	if err != nil {
		return res, err
	}
	a, dur, err := mlrInputs(chain, k)
	if err != nil {
		return res, err
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	beta, err := denseMLR(a, dur)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = beta[1]
	return res, nil
}

func denseMLR(a *matrix.Matrix, y []float64) ([]float64, error) {
	ym := matrix.New(len(y), 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	ata := linalg.CrossProduct(nil, a, a)
	inv, err := linalg.Inverse(ata)
	if err != nil {
		return nil, err
	}
	beta := linalg.MatMul(nil, inv, linalg.CrossProduct(nil, a, ym))
	return beta.Column(0), nil
}

// JourneysR composes the chains with single-core merges.
func JourneysR(trips, stations *rel.Relation, k int) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	// Single-core aggregation of legs.
	df := rsim.FromRelation(trips)
	ss, _ := df.Col("start_station")
	es, _ := df.Col("end_station")
	durC, _ := df.Col("duration")
	type agg struct {
		n   int
		dur float64
	}
	byRoute := make(map[[2]int64]*agg)
	for i := 0; i < df.NumRows(); i++ {
		key := [2]int64{ss.Ints()[i], es.Ints()[i]}
		a := byRoute[key]
		if a == nil {
			a = &agg{}
			byRoute[key] = a
		}
		a.n++
		a.dur += durC.Floats()[i]
	}
	sdf := rsim.FromRelation(stations)
	codeC, _ := sdf.Col("code")
	latC, _ := sdf.Col("lat")
	lonC, _ := sdf.Col("lon")
	coord := make(map[int64][2]float64, sdf.NumRows())
	for i := 0; i < sdf.NumRows(); i++ {
		coord[codeC.Ints()[i]] = [2]float64{latC.Floats()[i], lonC.Floats()[i]}
	}
	type leg struct {
		ss, es int64
		n      int
		dur    float64
		dist   float64
	}
	var legs []leg
	for key, a := range byRoute {
		if a.n < 50 {
			continue
		}
		c1, c2 := coord[key[0]], coord[key[1]]
		dy := (c1[0] - c2[0]) * 111.0
		dx := (c1[1] - c2[1]) * 78.8
		legs = append(legs, leg{key[0], key[1], a.n, a.dur / float64(a.n), math.Sqrt(dx*dx + dy*dy)})
	}
	// Canonical (ss, es) order: byRoute's iteration order must not
	// reach the chain composition below, whose cap keeps a prefix.
	sort.Slice(legs, func(i, j int) bool {
		if legs[i].ss != legs[j].ss {
			return legs[i].ss < legs[j].ss
		}
		return legs[i].es < legs[j].es
	})
	// Single-core chain composition.
	type chain struct {
		ss, es int64
		n      int
		dur    float64
		dists  []float64
	}
	byStart := make(map[int64][]leg)
	for _, l := range legs {
		byStart[l.ss] = append(byStart[l.ss], l)
	}
	chains := make([]chain, 0, len(legs))
	for _, l := range legs {
		chains = append(chains, chain{l.ss, l.es, l.n, l.dur, []float64{l.dist}})
	}
	for j := 2; j <= k; j++ {
		var next []chain
		for _, c := range chains {
			for _, l := range byStart[c.es] {
				n := c.n
				if l.n < n {
					n = l.n
				}
				if n < 50 {
					continue
				}
				dists := append(append([]float64(nil), c.dists...), l.dist)
				next = append(next, chain{c.ss, l.es, n, c.dur + l.dur, dists})
			}
		}
		if len(next) > journeyCap {
			next = next[:journeyCap]
		}
		chains = next
	}
	if len(chains) <= k+1 {
		return res, fmt.Errorf("bench: only %d chains of length %d", len(chains), k)
	}
	// data.frame → matrix conversion + BLAS regression.
	a := matrix.New(len(chains), k+1)
	y := make([]float64, len(chains))
	for i, c := range chains {
		a.Set(i, 0, 1)
		for d, dv := range c.dists {
			a.Set(i, d+1, dv)
		}
		y[i] = c.dur
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	beta, err := denseMLR(a, y)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = beta[1]
	return res, nil
}

// JourneysMADlib runs the workload on the row store.
func JourneysMADlib(trips, stations *rel.Relation, k int) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	tb := madlib.FromRelation(trips)
	ssIdx, _ := tb.ColIndex("start_station")
	esIdx, _ := tb.ColIndex("end_station")
	durIdx, _ := tb.ColIndex("duration")
	type agg struct {
		n   int
		dur float64
	}
	byRoute := make(map[[2]int64]*agg)
	for _, row := range tb.Rows {
		key := [2]int64{row[ssIdx].I, row[esIdx].I}
		a := byRoute[key]
		if a == nil {
			a = &agg{}
			byRoute[key] = a
		}
		a.n++
		a.dur += row[durIdx].F
	}
	st := madlib.FromRelation(stations)
	codeIdx, _ := st.ColIndex("code")
	latIdx, _ := st.ColIndex("lat")
	lonIdx, _ := st.ColIndex("lon")
	coord := make(map[int64][2]float64)
	for _, row := range st.Rows {
		coord[row[codeIdx].I] = [2]float64{row[latIdx].F, row[lonIdx].F}
	}
	type leg struct {
		ss, es int64
		n      int
		dur    float64
		dist   float64
	}
	var legs []leg
	for key, a := range byRoute {
		if a.n < 50 {
			continue
		}
		c1, c2 := coord[key[0]], coord[key[1]]
		dy := (c1[0] - c2[0]) * 111.0
		dx := (c1[1] - c2[1]) * 78.8
		legs = append(legs, leg{key[0], key[1], a.n, a.dur / float64(a.n), math.Sqrt(dx*dx + dy*dy)})
	}
	// Same canonical order as the single-core path: map iteration order
	// must not pick which chains survive the cap.
	sort.Slice(legs, func(i, j int) bool {
		if legs[i].ss != legs[j].ss {
			return legs[i].ss < legs[j].ss
		}
		return legs[i].es < legs[j].es
	})
	type chain struct {
		es    int64
		n     int
		dur   float64
		dists []float64
	}
	byStart := make(map[int64][]leg)
	for _, l := range legs {
		byStart[l.ss] = append(byStart[l.ss], l)
	}
	var chains []chain
	for _, l := range legs {
		chains = append(chains, chain{l.es, l.n, l.dur, []float64{l.dist}})
	}
	for j := 2; j <= k; j++ {
		var next []chain
		for _, c := range chains {
			for _, l := range byStart[c.es] {
				n := c.n
				if l.n < n {
					n = l.n
				}
				if n < 50 {
					continue
				}
				dists := append(append([]float64(nil), c.dists...), l.dist)
				next = append(next, chain{l.es, n, c.dur + l.dur, dists})
			}
		}
		if len(next) > journeyCap {
			next = next[:journeyCap]
		}
		chains = next
	}
	if len(chains) <= k+1 {
		return res, fmt.Errorf("bench: only %d chains of length %d", len(chains), k)
	}
	x := make([][]float64, len(chains))
	y := make([]float64, len(chains))
	for i, c := range chains {
		row := make([]float64, k+1)
		row[0] = 1
		copy(row[1:], c.dists)
		x[i] = row
		y[i] = c.dur
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	beta, err := madlib.LinRegr(x, y)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = beta[1]
	return res, nil
}
