package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// TestTripsEnginesAgree cross-validates the OLS slope across all four
// engines — they compute the same statistics on different substrates.
func TestTripsEnginesAgree(t *testing.T) {
	trips := dataset.Trips(30000, 50, 99)
	stations := dataset.Stations(50, 99)
	rma, err := TripsRMA(trips, stations, core.PolicyAuto)
	if err != nil {
		t.Fatal(err)
	}
	rmaBAT, err := TripsRMA(trips, stations, core.PolicyBAT)
	if err != nil {
		t.Fatal(err)
	}
	aida, err := TripsAIDA(trips, stations)
	if err != nil {
		t.Fatal(err)
	}
	madlib, err := TripsMADlib(trips, stations)
	if err != nil {
		t.Fatal(err)
	}
	tCSV, sCSV := tripsCSV(trips, stations)
	r, err := TripsR(tCSV, sCSV)
	if err != nil {
		t.Fatal(err)
	}
	if r.Load <= 0 {
		t.Error("R workload did not record load time")
	}
	for name, got := range map[string]float64{
		"rma-bat": rmaBAT.Check, "aida": aida.Check, "madlib": madlib.Check, "r": r.Check,
	} {
		if math.Abs(got-rma.Check) > 1e-6*(1+math.Abs(rma.Check)) {
			t.Errorf("%s slope = %v, rma = %v", name, got, rma.Check)
		}
	}
}

// TestCovarianceEnginesAgree cross-validates the A++ row count and the
// covariance values across engines.
func TestCovarianceEnginesAgree(t *testing.T) {
	pubs := dataset.Publications(2000, 25, 7)
	ranking := dataset.Rankings(25, 7)
	rma, err := CovarianceRMA(pubs, ranking, core.PolicyAuto)
	if err != nil {
		t.Fatal(err)
	}
	r, err := CovarianceR(pubs, ranking)
	if err != nil {
		t.Fatal(err)
	}
	aida, err := CovarianceAIDA(pubs, ranking)
	if err != nil {
		t.Fatal(err)
	}
	if rma.Check != r.Check || rma.Check != aida.Check {
		t.Errorf("A++ counts disagree: rma=%v r=%v aida=%v", rma.Check, r.Check, aida.Check)
	}
	if _, err := CovarianceMADlib(pubs, ranking); err != nil {
		t.Fatal(err)
	}
}

// TestTripCountEnginesAgree cross-validates the summed counts.
func TestTripCountEnginesAgree(t *testing.T) {
	y1 := dataset.RiderTripCounts(5000, 1)
	y2 := dataset.RiderTripCounts(5000, 2)
	rma, err := TripCountRMA(y1, y2, core.PolicyBAT)
	if err != nil {
		t.Fatal(err)
	}
	rmaD, err := TripCountRMA(y1, y2, core.PolicyDense)
	if err != nil {
		t.Fatal(err)
	}
	r, err := TripCountR(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	aida, err := TripCountAIDA(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TripCountMADlib(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{
		"rma-dense": rmaD.Check, "r": r.Check, "aida": aida.Check, "madlib": m.Check,
	} {
		if got != rma.Check {
			t.Errorf("%s total = %v, rma = %v", name, got, rma.Check)
		}
	}
}

// TestJourneysEnginesRun checks the chain composition terminates with
// sensible results for each engine at k=2.
func TestJourneysEnginesRun(t *testing.T) {
	trips := dataset.Trips(50000, 25, 3)
	stations := dataset.Stations(25, 3)
	for name, run := range map[string]func() (WorkloadResult, error){
		"rma":    func() (WorkloadResult, error) { return JourneysRMA(trips, stations, 2, core.PolicyAuto) },
		"aida":   func() (WorkloadResult, error) { return JourneysAIDA(trips, stations, 2) },
		"r":      func() (WorkloadResult, error) { return JourneysR(trips, stations, 2) },
		"madlib": func() (WorkloadResult, error) { return JourneysMADlib(trips, stations, 2) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(res.Check) || math.IsInf(res.Check, 0) {
			t.Errorf("%s: check = %v", name, res.Check)
		}
		if res.Total() <= 0 {
			t.Errorf("%s: no time recorded", name)
		}
	}
}

// TestRegistryComplete ensures every table and figure of the paper's
// evaluation has a registered experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig13a", "fig13b", "fig14a", "fig14b", "fig15a", "fig15b",
		"fig16a", "fig16b", "fig17a", "fig17b", "fig18a", "fig18b",
		"tab4", "tab5", "tab6", "tab7",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

// TestExperimentsRunQuick smoke-runs every registered experiment in quick
// mode and verifies each prints a table.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(&buf, true); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
			t.Errorf("%s produced no table:\n%s", e.ID, out)
		}
	}
}

// TestWorkloadResultHelpers covers the result formatting helpers.
func TestWorkloadResultHelpers(t *testing.T) {
	r := WorkloadResult{Load: 1e9, Prep: 2e9, Matrix: 3e9}
	if r.Total() != 6e9 {
		t.Errorf("Total = %v", r.Total())
	}
	s := fmtWorkload(r)
	if !strings.Contains(s, "load") {
		t.Errorf("fmtWorkload without load: %s", s)
	}
	s2 := fmtWorkload(WorkloadResult{Prep: 1e9, Matrix: 1e9})
	if strings.Contains(s2, "load") {
		t.Errorf("fmtWorkload with load: %s", s2)
	}
}
