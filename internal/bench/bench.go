package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // e.g. "tab5", "fig13a"
	Title string // the paper artifact it reproduces
	// Scaled documents the size reduction relative to the paper.
	Scaled string
	Run    func(w io.Writer, quick bool) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeIt runs f once and returns the wall time.
func timeIt(f func() error) (time.Duration, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0), err
}

// secs renders a duration in seconds with millisecond resolution, the
// unit of the paper's tables.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
