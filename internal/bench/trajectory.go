package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file implements the roadmap's bench-trajectory check: consecutive
// BENCH_<n>.json kernel reports are diffed op by op, and any kernel whose
// ns/op grew beyond the tolerance — or that silently disappeared from a
// newer report — fails the check. cmd/benchdiff wraps it for CI.

// DefaultTolerance is the maximum accepted relative slowdown between
// consecutive reports (0.20 = +20% ns/op).
const DefaultTolerance = 0.20

// LoadKernelReport reads one BENCH_<n>.json document.
func LoadKernelReport(path string) (*KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r KernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Delta is one kernel's movement between two reports.
type Delta struct {
	Op        string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs / OldNs
	Regressed bool
}

// CompareReports diffs two kernel reports. Kernels present in both are
// compared by ns/op against the tolerance; kernels present in old but
// missing from new are reported separately (a dropped kernel hides
// regressions, so callers treat it as a failure too). Kernels new in the
// newer report establish a baseline and are ignored here.
func CompareReports(old, new *KernelReport, tolerance float64) (deltas []Delta, missing []string) {
	newByOp := make(map[string]KernelResult, len(new.Results))
	for _, r := range new.Results {
		newByOp[r.Op] = r
	}
	for _, o := range old.Results {
		n, ok := newByOp[o.Op]
		if !ok {
			missing = append(missing, o.Op)
			continue
		}
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = n.NsPerOp / o.NsPerOp
		}
		deltas = append(deltas, Delta{
			Op:        o.Op,
			OldNs:     o.NsPerOp,
			NewNs:     n.NsPerOp,
			Ratio:     ratio,
			Regressed: ratio > 1+tolerance,
		})
	}
	return deltas, missing
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// BenchFiles returns the BENCH_<n>.json paths in dir ordered by n.
func BenchFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		files = append(files, numbered{n: n, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(files, func(a, b int) bool { return files[a].n < files[b].n })
	out := make([]string, len(files))
	for k, f := range files {
		out[k] = f.path
	}
	return out, nil
}

// CheckTrajectory diffs every consecutive pair of BENCH_<n>.json reports in
// dir and returns a human-readable table plus an error when any kernel
// regressed beyond the tolerance or went missing. Fewer than two reports is
// a pass (nothing to compare).
func CheckTrajectory(dir string, tolerance float64) (string, error) {
	files, err := BenchFiles(dir)
	if err != nil {
		return "", err
	}
	if len(files) < 2 {
		return fmt.Sprintf("bench trajectory: %d report(s) in %s, nothing to compare\n", len(files), dir), nil
	}
	var sb strings.Builder
	failed := false
	for k := 1; k < len(files); k++ {
		oldPath, newPath := files[k-1], files[k]
		old, err := LoadKernelReport(oldPath)
		if err != nil {
			return sb.String(), err
		}
		new, err := LoadKernelReport(newPath)
		if err != nil {
			return sb.String(), err
		}
		deltas, missing := CompareReports(old, new, tolerance)
		fmt.Fprintf(&sb, "%s -> %s (tolerance +%.0f%%)\n",
			filepath.Base(oldPath), filepath.Base(newPath), tolerance*100)
		for _, d := range deltas {
			mark := "ok"
			if d.Regressed {
				mark = "REGRESSION"
				failed = true
			}
			fmt.Fprintf(&sb, "  %-22s %12.0f -> %12.0f ns/op  %6.2fx  %s\n",
				d.Op, d.OldNs, d.NewNs, d.Ratio, mark)
		}
		for _, op := range missing {
			fmt.Fprintf(&sb, "  %-22s MISSING from %s\n", op, filepath.Base(newPath))
			failed = true
		}
	}
	if failed {
		return sb.String(), fmt.Errorf("bench trajectory check failed (>%.0f%% regression or missing kernel)", tolerance*100)
	}
	return sb.String(), nil
}
