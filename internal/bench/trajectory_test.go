package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, results []KernelResult) {
	t.Helper()
	data, err := json.Marshal(KernelReport{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReports(t *testing.T) {
	old := &KernelReport{Results: []KernelResult{
		{Op: "a", NsPerOp: 100},
		{Op: "b", NsPerOp: 100},
		{Op: "gone", NsPerOp: 50},
	}}
	new := &KernelReport{Results: []KernelResult{
		{Op: "a", NsPerOp: 115}, // +15%: within tolerance
		{Op: "b", NsPerOp: 125}, // +25%: regression
		{Op: "fresh", NsPerOp: 10},
	}}
	deltas, missing := CompareReports(old, new, 0.20)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	if deltas[0].Op != "a" || deltas[0].Regressed {
		t.Errorf("a: %+v", deltas[0])
	}
	if deltas[1].Op != "b" || !deltas[1].Regressed {
		t.Errorf("b: %+v", deltas[1])
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Errorf("missing = %v", missing)
	}
}

func TestBenchFilesOrdering(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_10.json", nil)
	writeReport(t, dir, "BENCH_2.json", nil)
	writeReport(t, dir, "BENCH_1.json", nil)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := BenchFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("files = %v", files)
	}
	// Numeric, not lexicographic: 1, 2, 10.
	for k, want := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json"} {
		if filepath.Base(files[k]) != want {
			t.Errorf("files[%d] = %s, want %s", k, files[k], want)
		}
	}
}

func TestCheckTrajectory(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_1.json", []KernelResult{{Op: "a", NsPerOp: 100}})
	writeReport(t, dir, "BENCH_2.json", []KernelResult{{Op: "a", NsPerOp: 105}})
	report, err := CheckTrajectory(dir, 0.20)
	if err != nil {
		t.Fatalf("clean trajectory failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "ok") {
		t.Errorf("report missing ok line:\n%s", report)
	}

	writeReport(t, dir, "BENCH_3.json", []KernelResult{{Op: "a", NsPerOp: 200}})
	report, err = CheckTrajectory(dir, 0.20)
	if err == nil {
		t.Fatalf("2x regression passed:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report missing REGRESSION line:\n%s", report)
	}

	// A kernel dropped from the newest report is a failure too.
	writeReport(t, dir, "BENCH_3.json", []KernelResult{{Op: "other", NsPerOp: 1}})
	if _, err = CheckTrajectory(dir, 0.20); err == nil {
		t.Fatal("missing kernel passed")
	}

	// A single report has nothing to compare.
	solo := t.TempDir()
	writeReport(t, solo, "BENCH_1.json", nil)
	if _, err := CheckTrajectory(solo, 0.20); err != nil {
		t.Fatalf("single report failed: %v", err)
	}
}
