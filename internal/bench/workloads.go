// Package bench implements the paper's evaluation (Section 8): one
// experiment per table and figure, each printing the same rows or series
// the paper reports, plus the four mixed workloads of §8.6 implemented for
// every engine (RMA+, R, AIDA, MADlib, SciDB) on their respective
// substrates.
package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bat"
	"repro/internal/competitor/aida"
	"repro/internal/competitor/madlib"
	"repro/internal/competitor/rsim"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// WorkloadResult carries the timings of one mixed-workload run, split the
// way Figures 15-18 are: relational preparation vs matrix computation
// (plus load time where the engine parses external data).
type WorkloadResult struct {
	Load   time.Duration
	Prep   time.Duration
	Matrix time.Duration
	// Check is a scalar derived from the result (e.g. the OLS slope) so
	// that engines can be cross-validated.
	Check float64
}

// Total returns the summed runtime.
func (w WorkloadResult) Total() time.Duration { return w.Load + w.Prep + w.Matrix }

// --- Workload 1: Trips — ordinary linear regression (Figure 15) -----------

// tripPrep holds the prepared regression inputs shared by engines that use
// the native relational engine.
type tripPrep struct {
	dist []float64
	dur  []float64
}

// prepareTripsNative runs the relational preparation on the column engine:
// aggregate routes, keep those ridden at least minCount times, join the
// station coordinates for both endpoints, compute distances.
func prepareTripsNative(trips, stations *rel.Relation, minCount float64) (*tripPrep, error) {
	counts, err := rel.GroupBy(nil, trips, []string{"start_station", "end_station"},
		[]rel.AggSpec{{Func: rel.Count, As: "n"}})
	if err != nil {
		return nil, err
	}
	nCol, _ := counts.Col("n")
	nInt := nCol.Vector().Ints()
	frequent := counts.Select(nil, func(i int) bool { return float64(nInt[i]) >= minCount })
	frequent, err = frequent.Drop("n")
	if err != nil {
		return nil, err
	}
	kept, err := rel.HashJoin(nil, trips, frequent,
		[]string{"start_station", "end_station"},
		[]string{"start_station", "end_station"}, rel.Inner)
	if err != nil {
		return nil, err
	}
	s1, err := stations.Rename(map[string]string{"code": "c1", "name": "n1", "lat": "lat1", "lon": "lon1"})
	if err != nil {
		return nil, err
	}
	s2, err := stations.Rename(map[string]string{"code": "c2", "name": "n2", "lat": "lat2", "lon": "lon2"})
	if err != nil {
		return nil, err
	}
	j1, err := rel.HashJoin(nil, kept, s1, []string{"start_station"}, []string{"c1"}, rel.Inner)
	if err != nil {
		return nil, err
	}
	j2, err := rel.HashJoin(nil, j1, s2, []string{"end_station"}, []string{"c2"}, rel.Inner)
	if err != nil {
		return nil, err
	}
	return distancesOf(j2, "lat1", "lon1", "lat2", "lon2", "duration")
}

func distancesOf(r *rel.Relation, lat1, lon1, lat2, lon2, dur string) (*tripPrep, error) {
	cols := make([][]float64, 5)
	for k, name := range []string{lat1, lon1, lat2, lon2, dur} {
		c, err := r.Col(name)
		if err != nil {
			return nil, err
		}
		f, err := c.Floats()
		if err != nil {
			return nil, err
		}
		cols[k] = f
	}
	n := r.NumRows()
	p := &tripPrep{dist: make([]float64, n), dur: cols[4]}
	for i := 0; i < n; i++ {
		dy := (cols[0][i] - cols[2][i]) * 111.0
		dx := (cols[1][i] - cols[3][i]) * 78.8
		p.dist[i] = math.Sqrt(dx*dx + dy*dy)
	}
	return p, nil
}

// olsRelations builds the A ([1, dist]) and V (dur) relations for the RMA
// formulation of OLS.
func olsRelations(p *tripPrep) (*rel.Relation, *rel.Relation) {
	n := len(p.dist)
	id := make([]int64, n)
	ones := make([]float64, n)
	for i := range id {
		id[i] = int64(i)
		ones[i] = 1
	}
	// Attribute names must sort like the schema order (b0 before b1):
	// inv orders the rows of its argument by the values of C, and the OLS
	// composition needs that order to match the column order. The paper's
	// Figure 6 pipeline relies on the same property (B, H, N sort
	// alphabetically).
	a := rel.MustNew("A", rel.Schema{
		{Name: "i", Type: bat.Int},
		{Name: "b0", Type: bat.Float},
		{Name: "b1", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(id), bat.FromFloats(ones), bat.FromFloats(p.dist)})
	v := rel.MustNew("V", rel.Schema{
		{Name: "i2", Type: bat.Int},
		{Name: "dur", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(id), bat.FromFloats(p.dur)})
	return a, v
}

// olsRMA computes beta = MMU(INV(CPD(A,A)), CPD(A,V)) with the given
// policy and returns the slope.
func olsRMA(a, v *rel.Relation, policy core.Policy) (float64, error) {
	opts := &core.Options{Policy: policy, SortMode: core.SortOptimized}
	ata, err := core.Cpd(a, []string{"i"}, a.WithName("A2"), []string{"i"}, opts)
	if err != nil {
		return 0, err
	}
	inv, err := core.Inv(ata, []string{"C"}, opts)
	if err != nil {
		return 0, err
	}
	atv, err := core.Cpd(a, []string{"i"}, v, []string{"i2"}, opts)
	if err != nil {
		return 0, err
	}
	beta, err := core.Mmu(inv, []string{"C"}, atv, []string{"C"}, opts)
	if err != nil {
		return 0, err
	}
	for i := 0; i < beta.NumRows(); i++ {
		if beta.Value(i, 0).S == "b1" {
			return beta.Value(i, 1).F, nil
		}
	}
	return 0, fmt.Errorf("bench: no slope coefficient")
}

// TripsRMA runs the full workload on RMA+ with the given policy.
func TripsRMA(trips, stations *rel.Relation, policy core.Policy) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	p, err := prepareTripsNative(trips, stations, 50)
	if err != nil {
		return res, err
	}
	a, v := olsRelations(p)
	res.Prep = time.Since(t0)
	t1 := time.Now()
	slope, err := olsRMA(a, v, policy)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = slope
	return res, nil
}

// TripsAIDA runs the workload as AIDA does: relational preparation on the
// column engine (AIDA pushes it into MonetDB), then the boundary crossing
// into the host runtime — where the date and member columns pay per-value
// conversion — and the matrix part on host arrays.
func TripsAIDA(trips, stations *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	// Same relational plan as RMA+, but the joined trip table crosses
	// into Python before the distance computation, as AIDA's host-side
	// workflow does — including its date and string columns.
	counts, err := rel.GroupBy(nil, trips, []string{"start_station", "end_station"},
		[]rel.AggSpec{{Func: rel.Count, As: "n"}})
	if err != nil {
		return res, err
	}
	nCol, _ := counts.Col("n")
	nInt := nCol.Vector().Ints()
	frequent := counts.Select(nil, func(i int) bool { return float64(nInt[i]) >= 50 })
	frequent, _ = frequent.Drop("n")
	kept, err := rel.HashJoin(nil, trips, frequent,
		[]string{"start_station", "end_station"},
		[]string{"start_station", "end_station"}, rel.Inner)
	if err != nil {
		return res, err
	}
	s1, _ := stations.Rename(map[string]string{"code": "c1", "name": "n1", "lat": "lat1", "lon": "lon1"})
	s2, _ := stations.Rename(map[string]string{"code": "c2", "name": "n2", "lat": "lat2", "lon": "lon2"})
	j1, err := rel.HashJoin(nil, kept, s1, []string{"start_station"}, []string{"c1"}, rel.Inner)
	if err != nil {
		return res, err
	}
	j2, err := rel.HashJoin(nil, j1, s2, []string{"end_station"}, []string{"c2"}, rel.Inner)
	if err != nil {
		return res, err
	}
	host := aida.CrossBoundary(j2) // dates/strings convert per value here
	lat1, _ := host.Col("lat1")
	lon1, _ := host.Col("lon1")
	lat2, _ := host.Col("lat2")
	lon2, _ := host.Col("lon2")
	dur, _ := host.Col("duration")
	n := len(dur.Floats)
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dy := (lat1.Floats[i] - lat2.Floats[i]) * 111.0
		dx := (lon1.Floats[i] - lon2.Floats[i]) * 78.8
		dist[i] = math.Sqrt(dx*dx + dy*dy)
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	slope, err := olsDense(dist, dur.Floats)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = slope
	return res, nil
}

// olsDense solves the simple regression with the dense kernels (the
// NumPy/BLAS path shared by AIDA and R).
func olsDense(dist, dur []float64) (float64, error) {
	n := len(dist)
	a := matrix.New(n, 2)
	v := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, dist[i])
		v.Set(i, 0, dur[i])
	}
	ata := linalg.CrossProduct(nil, a, a)
	inv, err := linalg.Inverse(ata)
	if err != nil {
		return 0, err
	}
	beta := linalg.MatMul(nil, inv, linalg.CrossProduct(nil, a, v))
	return beta.At(1, 0), nil
}

// TripsR runs the workload in the R simulation: CSV load (the dark bar of
// Figure 15a), single-core data.frame preparation, data.frame→matrix
// conversion, BLAS math.
func TripsR(tripsCSV, stationsCSV string) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	trips, err := rsim.LoadCSV(tripsCSV)
	if err != nil {
		return res, err
	}
	stations, err := rsim.LoadCSV(stationsCSV)
	if err != nil {
		return res, err
	}
	res.Load = time.Since(t0)

	t1 := time.Now()
	// Composite route key (paste(ss, es)), counted single-core.
	ss, _ := trips.Col("start_station")
	es, _ := trips.Col("end_station")
	n := trips.NumRows()
	key := bat.NewEmptyVector(bat.String, n)
	for i := 0; i < n; i++ {
		key.Append(bat.StringValue(ss.Get(i).String() + "|" + es.Get(i).String()))
	}
	trips.Names = append(trips.Names, "route")
	trips.Cols = append(trips.Cols, key)
	counts, err := trips.GroupCount("route")
	if err != nil {
		return res, err
	}
	routeCol, _ := trips.Col("route")
	kept := trips.Filter(func(i int) bool { return counts[routeCol.Strings()[i]] >= 50 })
	// Two merges for the endpoint coordinates.
	st1 := &rsim.DataFrame{Names: []string{"c1", "lat1", "lon1"}}
	code, _ := stations.Col("code")
	lat, _ := stations.Col("lat")
	lon, _ := stations.Col("lon")
	st1.Cols = []*bat.Vector{code, lat, lon}
	m1, err := rsim.Merge(kept, st1, "start_station", "c1")
	if err != nil {
		return res, err
	}
	st2 := &rsim.DataFrame{Names: []string{"c2", "lat2", "lon2"}, Cols: []*bat.Vector{code, lat, lon}}
	m2, err := rsim.Merge(m1, st2, "end_station", "c2")
	if err != nil {
		return res, err
	}
	lat1c, _ := m2.Col("lat1")
	lon1c, _ := m2.Col("lon1")
	lat2c, _ := m2.Col("lat2")
	lon2c, _ := m2.Col("lon2")
	durc, _ := m2.Col("duration")
	nn := m2.NumRows()
	dist := make([]float64, nn)
	dur := make([]float64, nn)
	lat1 := lat1c.Floats()
	lon1 := lon1c.Floats()
	lat2 := lat2c.Floats()
	lon2 := lon2c.Floats()
	durf, _ := durc.AsFloats()
	for i := 0; i < nn; i++ {
		dy := (lat1[i] - lat2[i]) * 111.0
		dx := (lon1[i] - lon2[i]) * 78.8
		dist[i] = math.Sqrt(dx*dx + dy*dy)
		dur[i] = durf[i]
	}
	res.Prep = time.Since(t1)

	t2 := time.Now()
	slope, err := olsDense(dist, dur)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t2)
	res.Check = slope
	return res, nil
}

// TripsMADlib runs the workload on the row store with single-threaded
// UDF regression.
func TripsMADlib(trips, stations *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	tb := madlib.FromRelation(trips)
	st := madlib.FromRelation(stations)
	ssIdx, _ := tb.ColIndex("start_station")
	esIdx, _ := tb.ColIndex("end_station")
	counts := make(map[[2]int64]int)
	for _, row := range tb.Rows {
		counts[[2]int64{row[ssIdx].I, row[esIdx].I}]++
	}
	kept := tb.Filter(func(row []bat.Value) bool {
		return counts[[2]int64{row[ssIdx].I, row[esIdx].I}] >= 50
	})
	j1, err := madlib.HashJoin(kept, st, "start_station", "code")
	if err != nil {
		return res, err
	}
	st2 := madlib.FromRelation(stations)
	st2.Schema = rel.Schema{
		{Name: "code2", Type: bat.Int}, {Name: "name2", Type: bat.String},
		{Name: "lat2", Type: bat.Float}, {Name: "lon2", Type: bat.Float},
	}
	j2, err := madlib.HashJoin(j1, st2, "end_station", "code2")
	if err != nil {
		return res, err
	}
	latIdx, _ := j2.ColIndex("lat")
	lonIdx, _ := j2.ColIndex("lon")
	lat2Idx, _ := j2.ColIndex("lat2")
	lon2Idx, _ := j2.ColIndex("lon2")
	durIdx, _ := j2.ColIndex("duration")
	x := make([][]float64, len(j2.Rows))
	y := make([]float64, len(j2.Rows))
	for i, row := range j2.Rows {
		dy := (row[latIdx].F - row[lat2Idx].F) * 111.0
		dx := (row[lonIdx].F - row[lon2Idx].F) * 78.8
		x[i] = []float64{1, math.Sqrt(dx*dx + dy*dy)}
		y[i] = row[durIdx].F
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	beta, err := madlib.LinRegr(x, y)
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t1)
	res.Check = beta[1]
	return res, nil
}

// --- Workload 3: Conferences — covariance (Figure 17) ----------------------

// CovarianceRMA computes the §8.6(3) workload: covariance of the
// publication counts via centered CPD, then join with the ranking and
// select A++ conferences.
func CovarianceRMA(pubs, ranking *rel.Relation, policy core.Policy) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	centered, names, err := centerNative(pubs)
	if err != nil {
		return res, err
	}
	res.Prep = time.Since(t0)

	t1 := time.Now()
	opts := &core.Options{Policy: policy, SortMode: core.SortOptimized}
	cov, err := core.Cpd(centered, []string{"author"}, centered.WithName("p2"), []string{"author"}, opts)
	if err != nil {
		return res, err
	}
	nRows := float64(pubs.NumRows())
	scale := 1 / (nRows - 1)
	for k := 1; k < cov.NumCols(); k++ {
		cov.Cols[k] = bat.MulScalar(nil, cov.Cols[k], scale)
	}
	res.Matrix = time.Since(t1)

	// Relational tail: join with the ranking, keep A++ conferences.
	t2 := time.Now()
	joined, err := rel.HashJoin(nil, cov, ranking, []string{"C"}, []string{"conf"}, rel.Inner)
	if err != nil {
		return res, err
	}
	pred, err := joined.StringPred("rating", func(s string) bool { return s == "A++" })
	if err != nil {
		return res, err
	}
	app := joined.Select(nil, pred)
	res.Prep += time.Since(t2)
	res.Check = float64(app.NumRows())
	_ = names
	return res, nil
}

// centerNative subtracts the column means from every application column
// (vectorized BAT arithmetic).
func centerNative(pubs *rel.Relation) (*rel.Relation, []string, error) {
	n := pubs.NumRows()
	cols := make([]*bat.BAT, len(pubs.Cols))
	cols[0] = pubs.Cols[0]
	names := make([]string, 0, len(pubs.Cols)-1)
	for k := 1; k < len(pubs.Cols); k++ {
		sum := bat.Sum(nil, pubs.Cols[k])
		cols[k] = bat.AddScalar(nil, pubs.Cols[k], -sum/float64(n))
		names = append(names, pubs.Schema[k].Name)
	}
	out, err := rel.New(pubs.Name, pubs.Schema, cols)
	return out, names, err
}

// CovarianceR runs the workload in the R simulation: conversion to matrix
// (timed as part of the matrix phase, as in the paper), crossprod, merge.
func CovarianceR(pubs, ranking *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	df := rsim.FromRelation(pubs) // load not timed: paper's fig 17 has no load bar
	t0 := time.Now()
	names := make([]string, 0, len(df.Names)-1)
	for _, n := range df.Names[1:] {
		names = append(names, n)
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	m, err := df.ToMatrix(names)
	if err != nil {
		return res, err
	}
	// Center in matrix form, then crossprod (R's BLAS path).
	nRows := m.Rows
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < nRows; i++ {
			s += m.At(i, j)
		}
		mean := s / float64(nRows)
		for i := 0; i < nRows; i++ {
			m.Set(i, j, m.At(i, j)-mean)
		}
	}
	cov := linalg.SYRK(nil, m).Scale(1 / float64(nRows-1))
	covDF := rsim.FromMatrix(cov, names)
	res.Matrix = time.Since(t1)

	// The covariance result in R has no contextual information: the
	// conference names must be added manually before the merge (§8.6(3)).
	t2 := time.Now()
	nameVec := bat.NewEmptyVector(bat.String, len(names))
	for _, n := range names {
		nameVec.Append(bat.StringValue(n))
	}
	covDF.Names = append([]string{"conf"}, covDF.Names...)
	covDF.Cols = append([]*bat.Vector{nameVec}, covDF.Cols...)
	rdf := rsim.FromRelation(ranking)
	merged, err := rsim.Merge(covDF, rdf, "conf", "conf")
	if err != nil {
		return res, err
	}
	rat, _ := merged.Col("rating")
	app := merged.Filter(func(i int) bool { return rat.Strings()[i] == "A++" })
	res.Prep += time.Since(t2)
	res.Check = float64(app.NumRows())
	return res, nil
}

// CovarianceAIDA runs the workload as AIDA: boundary crossing, host-side
// centering, a.t @ a on the host arrays, manual name re-attachment, join
// back on the column engine.
func CovarianceAIDA(pubs, ranking *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	host := aida.CrossBoundary(pubs)
	names := make([]string, 0, len(host.Cols)-1)
	for _, c := range host.Cols[1:] {
		names = append(names, c.Name)
	}
	m, err := host.Matrix(names)
	if err != nil {
		return res, err
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	nRows := m.Rows
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < nRows; i++ {
			s += m.At(i, j)
		}
		mean := s / float64(nRows)
		for i := 0; i < nRows; i++ {
			m.Set(i, j, m.At(i, j)-mean)
		}
	}
	cov := linalg.SYRK(nil, m).Scale(1 / float64(nRows-1))
	res.Matrix = time.Since(t1)

	t2 := time.Now()
	// Manual context re-attachment, then the join runs back in MonetDB.
	covRel := relFromMatrix(cov, names)
	joined, err := rel.HashJoin(nil, covRel, ranking, []string{"C"}, []string{"conf"}, rel.Inner)
	if err != nil {
		return res, err
	}
	pred, err := joined.StringPred("rating", func(s string) bool { return s == "A++" })
	if err != nil {
		return res, err
	}
	app := joined.Select(nil, pred)
	res.Prep += time.Since(t2)
	res.Check = float64(app.NumRows())
	return res, nil
}

func relFromMatrix(m *matrix.Matrix, names []string) *rel.Relation {
	schema := rel.Schema{{Name: "C", Type: bat.String}}
	cols := []*bat.BAT{bat.FromStrings(names)}
	for j := 0; j < m.Cols; j++ {
		schema = append(schema, rel.Attr{Name: names[j], Type: bat.Float})
		cols = append(cols, bat.FromFloats(m.Column(j)))
	}
	return rel.MustNew("cov", schema, cols)
}

// CovarianceMADlib runs covariance entirely single-core on the row store.
func CovarianceMADlib(pubs, ranking *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	tb := madlib.FromRelation(pubs)
	names := make([]string, 0, len(tb.Schema)-1)
	for _, a := range tb.Schema[1:] {
		names = append(names, a.Name)
	}
	rows, err := tb.ToArrays(names)
	if err != nil {
		return res, err
	}
	res.Prep = time.Since(t0)
	t1 := time.Now()
	cov := madlib.Covariance(rows)
	res.Matrix = time.Since(t1)
	res.Check = cov[0][0]
	return res, nil
}

// --- Workload 4: Trip count — matrix addition (Figure 18) ------------------

// TripCountRMA adds the rider×destination counts of two years.
func TripCountRMA(y1, y2 *rel.Relation, policy core.Policy) (WorkloadResult, error) {
	var res WorkloadResult
	t0 := time.Now()
	r2, err := y2.Rename(map[string]string{"rider": "rider2"})
	if err != nil {
		return res, err
	}
	sum, err := core.Add(y1, []string{"rider"}, r2, []string{"rider2"},
		&core.Options{Policy: policy, SortMode: core.SortOptimized})
	if err != nil {
		return res, err
	}
	res.Matrix = time.Since(t0)
	c, err := sum.Col("dest0")
	if err != nil {
		return res, err
	}
	res.Check = bat.Sum(nil, c)
	return res, nil
}

// TripCountR converts both data.frames to matrices, adds, converts back.
func TripCountR(y1, y2 *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	df1 := rsim.FromRelation(y1)
	df2 := rsim.FromRelation(y2)
	names := df1.Names[1:]
	t0 := time.Now()
	m1, err := df1.ToMatrix(names)
	if err != nil {
		return res, err
	}
	m2, err := df2.ToMatrix(names)
	if err != nil {
		return res, err
	}
	sum := matrix.Add(m1, m2)
	out := rsim.FromMatrix(sum, names)
	res.Matrix = time.Since(t0)
	c, _ := out.Col("dest0")
	total := 0.0
	for _, v := range c.Floats() {
		total += v
	}
	res.Check = total
	return res, nil
}

// TripCountAIDA crosses both relations into the host runtime (the rider id
// column converts per value), assembles arrays, adds.
func TripCountAIDA(y1, y2 *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	names := y1.Schema.Names()[1:]
	t0 := time.Now()
	h1 := aida.CrossBoundary(y1)
	h2 := aida.CrossBoundary(y2)
	m1, err := h1.Matrix(names)
	if err != nil {
		return res, err
	}
	m2, err := h2.Matrix(names)
	if err != nil {
		return res, err
	}
	sum := matrix.Add(m1, m2)
	res.Matrix = time.Since(t0)
	total := 0.0
	for i := 0; i < sum.Rows; i++ {
		total += sum.At(i, 0)
	}
	res.Check = total
	return res, nil
}

// TripCountMADlib adds row-at-a-time on the row store.
func TripCountMADlib(y1, y2 *rel.Relation) (WorkloadResult, error) {
	var res WorkloadResult
	t1 := madlib.FromRelation(y1)
	t2 := madlib.FromRelation(y2)
	names := y1.Schema.Names()[1:]
	t0 := time.Now()
	a1, err := t1.ToArrays(names)
	if err != nil {
		return res, err
	}
	a2, err := t2.ToArrays(names)
	if err != nil {
		return res, err
	}
	total := 0.0
	out := make([][]float64, len(a1))
	for i := range a1 {
		row := make([]float64, len(a1[i]))
		for j := range row {
			row[j] = a1[i][j] + a2[i][j]
		}
		out[i] = row
		total += row[0]
	}
	res.Matrix = time.Since(t0)
	res.Check = total
	return res, nil
}
