package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
)

// This file implements the multi-tenant load generator: N tenants x M
// concurrent connections against one shared sql.DB, every connection
// repeating a small cacheable statement mix — the serving workload
// cmd/rmaserver fronts. The report carries per-tenant latency
// quantiles and the plan-cache hit rate; the BENCH_<n>.json rows fold
// the merged p50/p99 into the perf trajectory, cached and cache-off.

// LoadOptions configures one load-generator run.
type LoadOptions struct {
	Tenants int  // N concurrent tenants
	Conns   int  // M concurrent connections per tenant
	Stmts   int  // statements per connection
	Rows    int  // fact-table rows behind the statement mix
	Cache   bool // plan cache on/off
	// Mix overrides the default statement mix (nil = loadMix). All
	// statements run against the streamBenchDB catalog (tables t, s).
	Mix []string
}

// TenantLoad is one tenant's latency summary.
type TenantLoad struct {
	Tenant string
	Count  int
	P50    time.Duration
	P99    time.Duration
}

// LoadReport is the outcome of one load-generator run.
type LoadReport struct {
	Tenants []TenantLoad // sorted by tenant name
	Total   int          // statements executed
	Elapsed time.Duration
	// P50/P99 merge every tenant's samples.
	P50, P99    time.Duration
	CacheHits   int64
	CacheMisses int64
}

// HitRate returns the plan-cache hit fraction of the run (0 when the
// cache saw no traffic).
func (r *LoadReport) HitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// loadMix is the repeated statement mix every connection cycles
// through: the filter–join–group pipeline statement, a sort-limit, and
// a filtered scan — all cacheable, so a warm cache serves everything
// after the first execution of each shape.
func loadMix(pipeline string) []string {
	return []string{
		pipeline,
		"SELECT val FROM t ORDER BY val LIMIT 10",
		"SELECT grp, val FROM t WHERE val > 50 LIMIT 100",
	}
}

// RunLoad executes the load and reports per-tenant latency quantiles.
func RunLoad(o LoadOptions) (*LoadReport, error) {
	if o.Tenants < 1 || o.Conns < 1 || o.Stmts < 1 {
		return nil, fmt.Errorf("bench: load needs at least 1 tenant, connection, and statement")
	}
	db, pipeline := streamBenchDB(o.Rows)
	db.SetGovernor(exec.NewGovernor(0, 0))
	db.SetPlanCache(o.Cache)
	mix := o.Mix
	if mix == nil {
		mix = loadMix(pipeline)
	}

	// Warm outside the timed region: first executions plan (and, when
	// the cache is on, install the entries) so the measured samples see
	// the steady serving state.
	for _, q := range mix {
		if _, err := db.Query(q); err != nil {
			return nil, fmt.Errorf("bench: load warmup %q: %w", q, err)
		}
	}
	pcBase := db.Metrics().PlanCache

	durs := make([][]time.Duration, o.Tenants) // [tenant] -> all samples
	for i := range durs {
		durs[i] = make([]time.Duration, 0, o.Conns*o.Stmts)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, o.Tenants*o.Conns)
	start := time.Now()
	for ti := 0; ti < o.Tenants; ti++ {
		opts := &core.Options{Tenant: fmt.Sprintf("load-%d", ti), MemoryBudget: 1 << 30}
		for c := 0; c < o.Conns; c++ {
			wg.Add(1)
			go func(ti, c int) {
				defer wg.Done()
				local := make([]time.Duration, 0, o.Stmts)
				for s := 0; s < o.Stmts; s++ {
					q := mix[(c+s)%len(mix)]
					t0 := time.Now()
					if _, err := db.QueryWith(q, opts); err != nil {
						errs <- fmt.Errorf("bench: load tenant %d %q: %w", ti, q, err)
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				durs[ti] = append(durs[ti], local...)
				mu.Unlock()
			}(ti, c)
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	pc := db.Metrics().PlanCache
	rep := &LoadReport{
		Elapsed:     elapsed,
		CacheHits:   pc.Hits - pcBase.Hits,
		CacheMisses: pc.Misses - pcBase.Misses,
	}
	var all []time.Duration
	for ti, d := range durs {
		sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
		rep.Tenants = append(rep.Tenants, TenantLoad{
			Tenant: fmt.Sprintf("load-%d", ti),
			Count:  len(d),
			P50:    quantileDur(d, 0.50),
			P99:    quantileDur(d, 0.99),
		})
		rep.Total += len(d)
		all = append(all, d...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	rep.P50 = quantileDur(all, 0.50)
	rep.P99 = quantileDur(all, 0.99)
	return rep, nil
}

// quantileDur returns the q-quantile of sorted samples (nearest-rank).
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	k := int(q * float64(len(sorted)-1))
	return sorted[k]
}

// PrintLoadReport renders the per-tenant table rmabench -load prints.
func PrintLoadReport(w io.Writer, o LoadOptions, r *LoadReport) {
	mode := "cached"
	if !o.Cache {
		mode = "cache-off"
	}
	fmt.Fprintf(w, "load: %d tenants x %d conns x %d stmts (%s, %d rows)\n",
		o.Tenants, o.Conns, o.Stmts, mode, o.Rows)
	for _, t := range r.Tenants {
		fmt.Fprintf(w, "  %-8s n=%-5d p50=%-10s p99=%s\n", t.Tenant, t.Count,
			t.P50.Round(time.Microsecond), t.P99.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "  overall  n=%-5d p50=%-10s p99=%s  %.0f stmts/s  cache hits=%d misses=%d (%.1f%%)\n",
		r.Total, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		float64(r.Total)/r.Elapsed.Seconds(), r.CacheHits, r.CacheMisses, 100*r.HitRate())
}

// loadKernelConfig is one LoadKernels scenario run cached and
// cache-off.
type loadKernelConfig struct {
	label string
	opts  LoadOptions
}

// LoadKernels measures the serving workload for the BENCH_<n>.json
// trajectory, cached and cache-off: merged p50/p99 statement latency
// under 4 tenants x 8 connections on the full mix (the concurrency
// trajectory), and the serial point-statement latency where the plan
// cache's parse+plan saving is a visible fraction of the statement.
// Best of measureRounds runs per metric, matching the micro-kernel
// estimator.
func LoadKernels(quick bool) ([]KernelResult, error) {
	concurrent := loadKernelConfig{label: "4x8",
		opts: LoadOptions{Tenants: 4, Conns: 8, Stmts: 24, Rows: 1 << 15}}
	point := loadKernelConfig{label: "serial-point",
		opts: LoadOptions{Tenants: 1, Conns: 1, Stmts: 300, Rows: 1 << 12,
			Mix: []string{"SELECT grp, val FROM t WHERE grp = 7 LIMIT 5"}}}
	if quick {
		concurrent.opts.Stmts, concurrent.opts.Rows = 6, 1<<12
		point.opts.Stmts = 50
	}
	var out []KernelResult
	for _, cfg := range []loadKernelConfig{concurrent, point} {
		for _, cache := range []bool{true, false} {
			o := cfg.opts
			o.Cache = cache
			suffix := "cached"
			if !cache {
				suffix = "nocache"
			}
			var bestP50, bestP99 time.Duration
			for round := 0; round < measureRounds; round++ {
				r, err := RunLoad(o)
				if err != nil {
					return nil, err
				}
				if cache && r.HitRate() <= 0.90 {
					return nil, fmt.Errorf("bench: load hit rate %.1f%% <= 90%% (hits=%d misses=%d)",
						100*r.HitRate(), r.CacheHits, r.CacheMisses)
				}
				if round == 0 || r.P50 < bestP50 {
					bestP50 = r.P50
				}
				if round == 0 || r.P99 < bestP99 {
					bestP99 = r.P99
				}
			}
			out = append(out,
				KernelResult{Op: "sql.Load(" + cfg.label + " p50, " + suffix + ")", Size: o.Rows,
					Cols: o.Tenants * o.Conns, NsPerOp: float64(bestP50.Nanoseconds())},
				KernelResult{Op: "sql.Load(" + cfg.label + " p99, " + suffix + ")", Size: o.Rows,
					Cols: o.Tenants * o.Conns, NsPerOp: float64(bestP99.Nanoseconds())},
			)
		}
	}
	return out, nil
}
