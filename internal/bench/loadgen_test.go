package bench

import "testing"

// TestRunLoad smoke-runs the load generator at tiny sizes and checks
// the report's arithmetic: every statement accounted, quantiles
// ordered, and the warm plan cache serving >90% of the load.
func TestRunLoad(t *testing.T) {
	o := LoadOptions{Tenants: 2, Conns: 3, Stmts: 5, Rows: 1 << 10, Cache: true}
	r, err := RunLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := o.Tenants * o.Conns * o.Stmts; r.Total != want {
		t.Fatalf("total = %d, want %d", r.Total, want)
	}
	if len(r.Tenants) != o.Tenants {
		t.Fatalf("tenant rows = %d", len(r.Tenants))
	}
	for _, tn := range r.Tenants {
		if tn.Count != o.Conns*o.Stmts {
			t.Fatalf("%s count = %d, want %d", tn.Tenant, tn.Count, o.Conns*o.Stmts)
		}
		if tn.P99 < tn.P50 {
			t.Fatalf("%s p99 %v < p50 %v", tn.Tenant, tn.P99, tn.P50)
		}
	}
	if r.P99 < r.P50 {
		t.Fatalf("merged p99 %v < p50 %v", r.P99, r.P50)
	}
	if r.HitRate() <= 0.90 {
		t.Fatalf("hit rate %.2f (hits=%d misses=%d), want >0.90", r.HitRate(), r.CacheHits, r.CacheMisses)
	}

	// Cache off: the same load runs clean with zero cache traffic.
	o.Cache = false
	r, err = RunLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHits != 0 || r.CacheMisses != 0 {
		t.Fatalf("cache-off run moved counters: hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
}
