package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/batlin"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
	"repro/internal/sql"
	"repro/internal/store"
)

// KernelResult is one row of the machine-readable benchmark file that
// cmd/rmabench -json emits: a kernel, its problem size, and the measured
// throughput and allocation behavior. Future PRs compare their BENCH_<n>
// files against earlier ones to track the perf trajectory.
type KernelResult struct {
	Op          string  `json:"op"`
	Size        int     `json:"size"` // rows of the dominant operand
	Cols        int     `json:"cols,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// PeakBytes is the peak accounted arena footprint of one operation,
	// measured under a dedicated tenant outside the timed loop. Only the
	// end-to-end statement kernels report it; zero elsewhere.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
}

// KernelReport is the top-level document of a BENCH_<n>.json file.
type KernelReport struct {
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallelism int            `json:"parallelism"`
	Timestamp   string         `json:"timestamp"`
	Results     []KernelResult `json:"results"`
}

// measureRounds is how many independent testing.Benchmark rounds each
// kernel gets; the fastest round is reported. On an otherwise idle
// machine interference only ever adds time, so the minimum is the
// robust estimator — single-round reports made the BENCH_<n>
// trajectory a coin flip against benchdiff's 20% tolerance whenever
// the host scheduler had a bad moment.
const measureRounds = 3

func measure(op string, size, cols int, f func(b *testing.B)) KernelResult {
	best := testing.Benchmark(f)
	for i := 1; i < measureRounds; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return KernelResult{
		Op:          op,
		Size:        size,
		Cols:        cols,
		NsPerOp:     float64(best.NsPerOp()),
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
	}
}

// MicroKernels measures the hot kernels of every execution layer: the raw
// BAT elementwise/reduction kernels, the column-at-a-time matrix
// operations of batlin, the dense matmul, two end-to-end RMA operations at
// the paper's benchmark sizes (Table 4 add, Table 6 qqr), and the parallel
// relational operators (hash join, grouped aggregation, sort index) plus
// the zero-suppressed add.
// A setup failure is an error, not a silently missing row — trajectory
// diffs between BENCH_<n> files must be able to trust completeness.
func MicroKernels(quick bool) ([]KernelResult, error) {
	rows := 1 << 20
	wideRows, wideCols := 1000, 1000
	qqrRows, qqrCols := 20000, 20
	mmuRows, mmuK := 4096, 64
	matmulN := 256
	if quick {
		rows = 1 << 16
		wideRows, wideCols = 200, 200
		qqrRows, qqrCols = 2000, 10
		mmuRows, mmuK = 512, 16
		matmulN = 64
	}

	var out []KernelResult

	x := bat.FromFloats(seqFloats(rows, 1))
	y := bat.FromFloats(seqFloats(rows, 2))
	out = append(out,
		measure("bat.Add", rows, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bat.Release(nil, bat.Add(nil, x, y))
			}
		}),
		measure("bat.Dot", rows, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bat.Dot(nil, x, y)
			}
		}),
		measure("bat.Sum", rows, 1, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bat.Sum(nil, x)
			}
		}),
	)

	ma := columnsOf(mmuRows, mmuK, 3)
	mb := columnsOf(mmuK, mmuK, 4)
	out = append(out, measure("batlin.MMU", mmuRows, mmuK, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := batlin.MMU(nil, ma, mb)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range res {
				bat.Release(nil, c)
			}
		}
	}))

	mx := matrix.New(matmulN, matmulN)
	my := matrix.New(matmulN, matmulN)
	for i := range mx.Data {
		mx.Data[i] = float64(i % 97)
		my.Data[i] = float64(i % 89)
	}
	out = append(out, measure("linalg.MatMul", matmulN, matmulN, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MatMul(nil, mx, my)
		}
	}))

	// Blocked variants of the dense kernels: the same multiply over a
	// 4×4 tile grid, serially (the acceptance bar is parity with the
	// flat path) and under a 4-worker budget (where the fixed-order
	// tile accumulation fans out), plus a blocked Householder QR.
	bx, err := matrix.BlockOf(nil, mx, matmulN/4)
	if err != nil {
		return nil, fmt.Errorf("bench: blocked matmul setup: %w", err)
	}
	by, err := matrix.BlockOf(nil, my, matmulN/4)
	if err != nil {
		return nil, fmt.Errorf("bench: blocked matmul setup: %w", err)
	}
	cSerial, c4 := exec.New(1), exec.New(4)
	out = append(out, measure("linalg.MatMul(blocked)", matmulN, matmulN, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := linalg.MatMulBlocked(cSerial, bx, by)
			if err != nil {
				b.Fatal(err)
			}
			res.Free(cSerial)
		}
	}))
	out = append(out, measure("linalg.MatMul(blocked-4w)", matmulN, matmulN, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := linalg.MatMulBlocked(c4, bx, by)
			if err != nil {
				b.Fatal(err)
			}
			res.Free(c4)
		}
	}))
	out = append(out, measure("linalg.QR(blocked)", matmulN, matmulN, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := linalg.QRBlocked(c4, bx); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Regression guard for the per-worker fan-out threshold: a 64³
	// multiply (exactly one parallelThreshold of flops) under a wide
	// worker budget must stay serial — the old total-flops heuristic
	// fanned out 8 goroutines here and paid their setup for nothing.
	midN := 64
	m8 := exec.New(8)
	sx, sy := matrix.New(midN, midN), matrix.New(midN, midN)
	for i := range sx.Data {
		sx.Data[i] = float64(i % 101)
		sy.Data[i] = float64(i % 103)
	}
	out = append(out, measure("linalg.MatMul(serial-mid)", midN, midN, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MatMul(m8, sx, sy)
		}
	}))

	wr := dataset.Uniform(wideRows, wideCols, 3)
	ws, err := dataset.Uniform(wideRows, wideCols, 4).Rename(map[string]string{"k": "k2"})
	if err != nil {
		return nil, fmt.Errorf("bench: table4 setup: %w", err)
	}
	out = append(out, measure("core.Add(table4)", wideRows, wideCols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Add(wr, []string{"k"}, ws, []string{"k2"},
				&core.Options{SortMode: core.SortOptimized}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Concurrent mixed-budget queries: one serial and one 8-wide core.Add
	// run simultaneously, each under its own per-invocation execution
	// context (the workload the Ctx refactor makes race-free; before it,
	// both invocations fought over a process-wide worker knob).
	out = append(out, measure("core.Add(mixed-budget x2)", wideRows, wideCols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, workers := range []int{1, 8} {
				wg.Add(1)
				go func(workers int) {
					defer wg.Done()
					if _, err := core.Add(wr, []string{"k"}, ws, []string{"k2"},
						&core.Options{SortMode: core.SortOptimized, Parallelism: workers}); err != nil {
						b.Error(err)
					}
				}(workers)
			}
			wg.Wait()
		}
	}))

	// Arena pressure: the same ADD once on the shared (unaccounted)
	// arena and once through a budgeted tenant arena, so the trajectory
	// tracks what the per-tenant byte accounting (ledger + budget check
	// per allocation) costs on a transform-heavy operation. The budget
	// is generous — the kernel measures accounting overhead, not
	// rejection. The default governor carries the charges so rmabench's
	// expvar "rma.memory" surface (exec.Metrics) shows the bench tenant
	// while the suite runs.
	out = append(out, measure("core.Add(arena-budgeted)", wideRows, wideCols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Add(wr, []string{"k"}, ws, []string{"k2"},
				&core.Options{SortMode: core.SortOptimized, Tenant: "bench",
					MemoryBudget: 1 << 30}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	qr := dataset.Uniform(qqrRows, qqrCols, 7)
	out = append(out, measure("core.Qqr(table6)", qqrRows, qqrCols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Qqr(qr, []string{"k"},
				&core.Options{Policy: core.PolicyDense, SortMode: core.SortOptimized}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Relational operators on the parallel substrate: partitioned hash
	// join (~1 match per probe row), grouped aggregation (256 groups),
	// and the merge-sorted permutation.
	joinRows := 1 << 17
	if quick {
		joinRows = 1 << 13
	}
	jl := intKeyRel("l", joinRows, int64(joinRows), 11)
	js := intKeyRel("s", joinRows, int64(joinRows), 12)
	out = append(out, measure("rel.HashJoin", joinRows, 2, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rel.HashJoin(nil, jl, js, []string{"l_k"}, []string{"s_k"}, rel.Inner); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The same join through the radix-partitioned exchange: four shards
	// built, probed, and concatenated in fixed shard order.
	out = append(out, measure("rel.Exchange(join-4shard)", joinRows, 2, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rel.ExchangeJoin(nil, jl, js, []string{"l_k"}, []string{"s_k"}, rel.Inner, 4, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))

	gr := intKeyRel("g", joinRows, 256, 13)
	aggs := []rel.AggSpec{
		{Func: rel.Count, As: "n"},
		{Func: rel.Sum, Attr: "g_v", As: "s"},
		{Func: rel.Min, Attr: "g_v", As: "lo"},
	}
	out = append(out, measure("rel.GroupBy", joinRows, 256, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rel.GroupBy(nil, gr, []string{"g_k"}, aggs); err != nil {
				b.Fatal(err)
			}
		}
	}))

	sortCol := bat.FromFloats(seqFloats(joinRows, 17))
	out = append(out, measure("bat.SortIndex", joinRows, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bat.FreeInts(bat.SortIndex(nil, []*bat.BAT{sortCol}))
		}
	}))

	spLen := rows
	sa := sparseOf(spLen, 100, 5) // ~1% density
	sb := sparseOf(spLen, 100, 6)
	out = append(out, measure("bat.SparseAdd", spLen, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bat.SparseAdd(nil, sa, sb)
		}
	}))

	// End-to-end statement pipeline: the same filter → join → group-by
	// SELECT once streamed morsel-at-a-time and once through the
	// materializing path. Each variant also records the peak accounted
	// arena bytes of a single run (measured under a dedicated tenant,
	// outside the timed loop) — the number the streaming pipeline exists
	// to shrink.
	sdb, q := streamBenchDB(joinRows)
	for _, streaming := range []struct {
		on bool
		op string
	}{{true, "sql.Select(filter-join-group, streamed)"}, {false, "sql.Select(filter-join-group, materialized)"}} {
		sdb.SetStreaming(streaming.on)
		gov := exec.NewGovernor(1<<33, 4)
		sdb.SetGovernor(gov)
		sdb.SetRMAOptions(&core.Options{Tenant: "bench-pipe", MemoryBudget: 1 << 31})
		if _, err := sdb.Query(q); err != nil {
			return nil, fmt.Errorf("bench: pipeline setup (streaming=%v): %w", streaming.on, err)
		}
		peak := gov.Tenant("bench-pipe", 1<<31).PeakBytes()
		sdb.SetRMAOptions(nil) // time the pipeline itself, not the accounting
		kr := measure(streaming.op, joinRows, 3, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sdb.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		kr.PeakBytes = peak
		out = append(out, kr)
	}

	// Out-of-core variant of the same pipeline: a one-byte spill
	// threshold sends every estimate-gated operator to its disk path, so
	// the trajectory tracks what staging costs against the in-memory
	// rows above — and PeakBytes records the resident footprint the
	// staging buys back.
	spillDir, err := os.MkdirTemp("", "rmabench-spill-")
	if err != nil {
		return nil, fmt.Errorf("bench: spill dir: %w", err)
	}
	defer os.RemoveAll(spillDir)
	sdb.SetStreaming(true)
	sdb.SetSpill(spillDir, 1)
	sgov := exec.NewGovernor(1<<33, 4)
	sdb.SetGovernor(sgov)
	sdb.SetRMAOptions(&core.Options{Tenant: "bench-spill", MemoryBudget: 1 << 31})
	if _, err := sdb.Query(q); err != nil {
		return nil, fmt.Errorf("bench: spilled pipeline setup: %w", err)
	}
	if st := sdb.SpillStats(); st.Events == 0 {
		return nil, fmt.Errorf("bench: spilled pipeline staged nothing to disk")
	}
	spillPeak := sgov.Tenant("bench-spill", 1<<31).PeakBytes()
	sdb.SetRMAOptions(nil)
	kr := measure("sql.Select(filter-join-group, spilled)", joinRows, 3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sdb.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	kr.PeakBytes = spillPeak
	out = append(out, kr)

	// Zone-map-pruned scan over the on-disk segment store: ascending
	// keys make per-segment min/max ranges disjoint, so the BETWEEN
	// confines the aggregation to one mid-table segment and the scan
	// skips the rest.
	scanSegs := 8
	if quick {
		scanSegs = 2
	}
	scanRows := scanSegs * store.SegRows
	scanQ, pdb, pdir, err := persistedScanDB(scanSegs)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	defer pdb.Close()
	out = append(out, measure("store.Scan(zonemap-pruned)", scanRows, 2, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pdb.Query(scanQ); err != nil {
				b.Fatal(err)
			}
		}
	}))

	return out, nil
}

// persistedScanDB checkpoints a two-column table spanning scanSegs
// on-disk segments and returns a single-segment range aggregation over
// it, plus the data directory for the caller to remove after Close.
func persistedScanDB(scanSegs int) (string, *sql.DB, string, error) {
	dir, err := os.MkdirTemp("", "rmabench-store-")
	if err != nil {
		return "", nil, "", fmt.Errorf("bench: store dir: %w", err)
	}
	n := scanSegs * store.SegRows
	ks := make([]int64, n)
	vs := make([]float64, n)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = float64(i%911) * 0.5
	}
	db := sql.NewDB()
	if err := db.SetDataDir(dir); err != nil {
		return "", nil, "", fmt.Errorf("bench: store scan setup: %w", err)
	}
	db.Register("src", rel.MustNew("src", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "v", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(vs)}))
	for _, stmt := range []string{
		"CREATE TABLE pt (k BIGINT, v DOUBLE) PERSIST",
		"INSERT INTO pt SELECT k, v FROM src",
	} {
		if _, err := db.Exec(stmt); err != nil {
			db.Close()
			return "", nil, "", fmt.Errorf("bench: %s: %w", stmt, err)
		}
	}
	lo := (scanSegs / 2) * store.SegRows
	q := fmt.Sprintf("SELECT SUM(v) AS s, COUNT(*) AS n FROM pt WHERE k BETWEEN %d AND %d",
		lo, lo+store.SegRows-1)
	return q, db, dir, nil
}

// streamBenchDB builds the fact/dimension pair and the statement the
// pipeline kernels run: a half-selective scan filter, an equi-join into
// a 500-row dimension, and a 97-group aggregation.
func streamBenchDB(n int) (*sql.DB, string) {
	grps := make([]int64, n)
	vals := make([]float64, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		grps[i] = int64((i*7919 + 5) % 97)
		vals[i] = float64(i%211)*0.375 - 39.0
		ws[i] = float64((i*31)%997) * 0.0625
	}
	db := sql.NewDB()
	db.Register("t", rel.MustNew("t", rel.Schema{
		{Name: "grp", Type: bat.Int},
		{Name: "val", Type: bat.Float},
		{Name: "w", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(grps), bat.FromFloats(vals), bat.FromFloats(ws)}))

	const dn = 500
	ks := make([]int64, dn)
	bonus := make([]float64, dn)
	for j := 0; j < dn; j++ {
		ks[j] = int64((j * 13) % 120)
		bonus[j] = float64(j%17) * 0.5
	}
	db.Register("s", rel.MustNew("s", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "bonus", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(bonus)}))

	q := "SELECT grp AS g, SUM(val) AS sv, SUM(w) AS sw, COUNT(*) AS n " +
		"FROM t JOIN s ON t.grp = s.k WHERE t.val > 0 GROUP BY grp ORDER BY g"
	return db, q
}

// intKeyRel builds a two-column relation (int key of the given cardinality,
// float value) for the join/group kernels.
func intKeyRel(name string, n int, card, seed int64) *rel.Relation {
	keys := make([]int64, n)
	for k := range keys {
		keys[k] = (int64(k)*7919 + seed*104729) % card
	}
	return rel.MustNew(name, rel.Schema{
		{Name: name + "_k", Type: bat.Int},
		{Name: name + "_v", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(keys), bat.FromFloats(seqFloats(n, seed))})
}

// sparseOf builds a zero-suppressed column of length n keeping roughly one
// in every stride values non-zero.
func sparseOf(n, stride int, seed int64) *bat.Sparse {
	f := make([]float64, n)
	for k := 0; k < n; k += stride {
		f[k] = float64((int64(k)*7919+seed)%1000 + 1)
	}
	return bat.Compress(f)
}

// WriteKernelReport runs MicroKernels and writes the JSON document to
// path (the BENCH_<n>.json convention of the repository roadmap).
func WriteKernelReport(path string, quick bool) error {
	results, err := MicroKernels(quick)
	if err != nil {
		return err
	}
	loadRows, err := LoadKernels(quick)
	if err != nil {
		return err
	}
	results = append(results, loadRows...)
	report := KernelReport{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: exec.DefaultWorkers(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Results:     results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

func seqFloats(n int, seed int64) []float64 {
	f := make([]float64, n)
	for k := range f {
		f[k] = float64((int64(k)*7919 + seed*104729) % 1000)
	}
	return f
}

func columnsOf(rows, cols int, seed int64) []*bat.BAT {
	out := make([]*bat.BAT, cols)
	for j := range out {
		out[j] = bat.FromFloats(seqFloats(rows, seed+int64(j)))
	}
	return out
}
