package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rel"
)

// fmtWorkload renders one engine column of a Figure 15/16-style bar:
// prep+matrix (and load when present).
func fmtWorkload(r WorkloadResult) string {
	if r.Load > 0 {
		return fmt.Sprintf("%s (load %s, prep %s, matrix %s)",
			secs(r.Total()), secs(r.Load), secs(r.Prep), secs(r.Matrix))
	}
	return fmt.Sprintf("%s (prep %s, matrix %s)", secs(r.Total()), secs(r.Prep), secs(r.Matrix))
}

// tripsCSV renders the generated trips/stations as CSV once per size for
// the R load phase.
func tripsCSV(trips, stations *rel.Relation) (string, string) {
	var tsb, ssb strings.Builder
	dfT := relToCSV(trips)
	dfS := relToCSV(stations)
	tsb.WriteString(dfT)
	ssb.WriteString(dfS)
	return tsb.String(), ssb.String()
}

func relToCSV(r *rel.Relation) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Schema.Names(), ","))
	sb.WriteByte('\n')
	n := r.NumRows()
	for i := 0; i < n; i++ {
		for k, c := range r.Cols {
			if k > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c.Get(i).String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

const tripStations = 80

func init() {
	register(Experiment{
		ID:     "fig15a",
		Title:  "Figure 15a: Trips (ordinary linear regression) — RMA+, AIDA, R, MADlib",
		Scaled: "trips /10: 310K-1.45M (paper: 3.1M-14.5M)",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{310000, 650000, 1050000, 1450000}
			if quick {
				sizes = []int{50000, 100000}
			}
			fmt.Fprintln(w, "#tuples  RMA+ | AIDA | R | MADlib   (seconds: total, split)")
			for _, n := range sizes {
				trips := dataset.Trips(n, tripStations, int64(n))
				stations := dataset.Stations(tripStations, int64(n))
				rRMA, err := TripsRMA(trips, stations, core.PolicyAuto)
				if err != nil {
					return err
				}
				rAIDA, err := TripsAIDA(trips, stations)
				if err != nil {
					return err
				}
				tCSV, sCSV := tripsCSV(trips, stations)
				rR, err := TripsR(tCSV, sCSV)
				if err != nil {
					return err
				}
				rM, err := TripsMADlib(trips, stations)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8d  %s | %s | %s | %s\n", n,
					fmtWorkload(rRMA), fmtWorkload(rAIDA), fmtWorkload(rR), fmtWorkload(rM))
			}
			return nil
		},
	})
	register(Experiment{
		ID:     "fig15b",
		Title:  "Figure 15b: Trips — RMA+BAT vs RMA+MKL",
		Scaled: "trips /10",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{310000, 650000, 1050000, 1450000}
			if quick {
				sizes = []int{50000, 100000}
			}
			fmt.Fprintln(w, "#tuples  RMA+MKL  RMA+BAT  (seconds, matrix phase)")
			for _, n := range sizes {
				trips := dataset.Trips(n, tripStations, int64(n))
				stations := dataset.Stations(tripStations, int64(n))
				mkl, err := TripsRMA(trips, stations, core.PolicyDense)
				if err != nil {
					return err
				}
				batRes, err := TripsRMA(trips, stations, core.PolicyBAT)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8d  %s  %s\n", n, secs(mkl.Matrix), secs(batRes.Matrix))
			}
			return nil
		},
	})
}

func init() {
	register(Experiment{
		ID:     "fig16a",
		Title:  "Figure 16a: Journeys (multiple linear regression, 1-5 trips) — systems comparison",
		Scaled: "trips: 300K over 30 stations (paper: 15M one-trip journeys)",
		Run: func(w io.Writer, quick bool) error {
			n := 300000
			ks := []int{1, 2, 3, 4, 5}
			if quick {
				n = 60000
				ks = []int{1, 2, 3}
			}
			trips := dataset.Trips(n, 30, 1600)
			stations := dataset.Stations(30, 1600)
			fmt.Fprintln(w, "#trips  RMA+ | AIDA | R | MADlib   (seconds: total, split)")
			for _, k := range ks {
				rRMA, err := JourneysRMA(trips, stations, k, core.PolicyAuto)
				if err != nil {
					return err
				}
				rAIDA, err := JourneysAIDA(trips, stations, k)
				if err != nil {
					return err
				}
				rR, err := JourneysR(trips, stations, k)
				if err != nil {
					return err
				}
				rM, err := JourneysMADlib(trips, stations, k)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%6d  %s | %s | %s | %s\n", k,
					fmtWorkload(rRMA), fmtWorkload(rAIDA), fmtWorkload(rR), fmtWorkload(rM))
			}
			return nil
		},
	})
	register(Experiment{
		ID:     "fig16b",
		Title:  "Figure 16b: Journeys — RMA+BAT vs RMA+MKL",
		Scaled: "as fig16a",
		Run: func(w io.Writer, quick bool) error {
			n := 300000
			ks := []int{1, 2, 3, 4, 5}
			if quick {
				n = 60000
				ks = []int{1, 2}
			}
			trips := dataset.Trips(n, 30, 1600)
			stations := dataset.Stations(30, 1600)
			fmt.Fprintln(w, "#trips  RMA+MKL  RMA+BAT  (seconds, matrix phase)")
			for _, k := range ks {
				mkl, err := JourneysRMA(trips, stations, k, core.PolicyDense)
				if err != nil {
					return err
				}
				b, err := JourneysRMA(trips, stations, k, core.PolicyBAT)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%6d  %s  %s\n", k, secs(mkl.Matrix), secs(b.Matrix))
			}
			return nil
		},
	})
}

// fig17Sizes are the scaled DBLP pivot sizes (paper: 337363x266,
// 550085x519, 722891x744, 876559x882 — rows /16, columns /2..4 keeping the
// n·k² growth shape).
var fig17Sizes = [][2]int{{21000, 66}, {34000, 130}, {45000, 186}, {55000, 220}}

func init() {
	register(Experiment{
		ID:     "fig17a",
		Title:  "Figure 17a: Conferences (covariance) — RMA+, R, AIDA (MADlib printed separately)",
		Scaled: "rows /16, conferences /4 (paper sizes in title)",
		Run: func(w io.Writer, quick bool) error {
			sizes := fig17Sizes
			if quick {
				sizes = [][2]int{{5000, 40}, {8000, 60}}
			}
			fmt.Fprintln(w, "authorsxconfs  RMA+ | AIDA | R | MADlib   (seconds: total, split)")
			for _, sz := range sizes {
				pubs := dataset.Publications(sz[0], sz[1], int64(sz[0]))
				ranking := dataset.Rankings(sz[1], int64(sz[0]))
				rRMA, err := CovarianceRMA(pubs, ranking, core.PolicyAuto)
				if err != nil {
					return err
				}
				rAIDA, err := CovarianceAIDA(pubs, ranking)
				if err != nil {
					return err
				}
				rR, err := CovarianceR(pubs, ranking)
				if err != nil {
					return err
				}
				rM, err := CovarianceMADlib(pubs, ranking)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%6dx%-4d  %s | %s | %s | %s\n", sz[0], sz[1],
					fmtWorkload(rRMA), fmtWorkload(rAIDA), fmtWorkload(rR), fmtWorkload(rM))
			}
			return nil
		},
	})
	register(Experiment{
		ID:     "fig17b",
		Title:  "Figure 17b: Conferences — RMA+BAT vs RMA+MKL",
		Scaled: "as fig17a",
		Run: func(w io.Writer, quick bool) error {
			sizes := fig17Sizes
			if quick {
				sizes = [][2]int{{5000, 40}}
			}
			fmt.Fprintln(w, "authorsxconfs  RMA+MKL  RMA+BAT  (seconds, matrix phase)")
			for _, sz := range sizes {
				pubs := dataset.Publications(sz[0], sz[1], int64(sz[0]))
				ranking := dataset.Rankings(sz[1], int64(sz[0]))
				mkl, err := CovarianceRMA(pubs, ranking, core.PolicyDense)
				if err != nil {
					return err
				}
				b, err := CovarianceRMA(pubs, ranking, core.PolicyBAT)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%6dx%-4d  %s  %s\n", sz[0], sz[1], secs(mkl.Matrix), secs(b.Matrix))
			}
			return nil
		},
	})
}

func init() {
	register(Experiment{
		ID:     "fig18a",
		Title:  "Figure 18a: Trip count (matrix addition) — RMA+, AIDA, R, MADlib",
		Scaled: "riders /10: 100K-1.5M (paper: 1M-15M)",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{100000, 500000, 1000000, 1500000}
			if quick {
				sizes = []int{50000, 100000}
			}
			fmt.Fprintln(w, "#riders  RMA+ | AIDA | R | MADlib   (seconds)")
			for _, n := range sizes {
				y1 := dataset.RiderTripCounts(n, 2016)
				y2 := dataset.RiderTripCounts(n, 2017)
				rRMA, err := TripCountRMA(y1, y2, core.PolicyAuto)
				if err != nil {
					return err
				}
				rAIDA, err := TripCountAIDA(y1, y2)
				if err != nil {
					return err
				}
				rR, err := TripCountR(y1, y2)
				if err != nil {
					return err
				}
				rM, err := TripCountMADlib(y1, y2)
				if err != nil {
					return err
				}
				if rRMA.Check != rAIDA.Check || rRMA.Check != rR.Check || rRMA.Check != rM.Check {
					return fmt.Errorf("bench: engines disagree on trip counts")
				}
				fmt.Fprintf(w, "%8d  %s | %s | %s | %s\n", n,
					secs(rRMA.Total()), secs(rAIDA.Total()), secs(rR.Total()), secs(rM.Total()))
			}
			return nil
		},
	})
	register(Experiment{
		ID:     "fig18b",
		Title:  "Figure 18b: Trip count — RMA+BAT vs RMA+MKL",
		Scaled: "as fig18a",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{100000, 500000, 1000000, 1500000}
			if quick {
				sizes = []int{50000, 100000}
			}
			fmt.Fprintln(w, "#riders  RMA+MKL  RMA+BAT  (seconds)")
			for _, n := range sizes {
				y1 := dataset.RiderTripCounts(n, 2016)
				y2 := dataset.RiderTripCounts(n, 2017)
				mkl, err := TripCountRMA(y1, y2, core.PolicyDense)
				if err != nil {
					return err
				}
				b, err := TripCountRMA(y1, y2, core.PolicyBAT)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8d  %s  %s\n", n, secs(mkl.Total()), secs(b.Total()))
			}
			return nil
		},
	})
}
