package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/competitor/arraydb"
	"repro/internal/competitor/rsim"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// --- Figure 13: handling contextual information ---------------------------

// runFig13 measures add and qqr over relations with one application column
// and many order columns, with and without the Section 8.1 sorting
// optimizations.
func runFig13(w io.Writer, rows int, orderCounts []int) error {
	fmt.Fprintf(w, "#order-attrs  add  add-relative-sorting  qqr  qqr-wo-sorting   (seconds, %d tuples)\n", rows)
	for _, k := range orderCounts {
		r, orderR := dataset.WideOrder(rows, k, 100+int64(k))
		s, orderS := dataset.WideOrder(rows, k, 200+int64(k))
		// add needs disjoint order schema names on the second argument.
		ren := make(map[string]string, len(orderS))
		for _, n := range orderS {
			ren[n] = "p" + n
		}
		s2, err := s.Rename(ren)
		if err != nil {
			return err
		}
		orderS2 := make([]string, len(orderS))
		for i, n := range orderS {
			orderS2[i] = "p" + n
		}

		addFull, err := timeIt(func() error {
			_, err := core.Add(r, orderR, s2, orderS2, &core.Options{SortMode: core.SortFull})
			return err
		})
		if err != nil {
			return err
		}
		addOpt, err := timeIt(func() error {
			_, err := core.Add(r, orderR, s2, orderS2, &core.Options{SortMode: core.SortOptimized})
			return err
		})
		if err != nil {
			return err
		}
		qqrFull, err := timeIt(func() error {
			_, err := core.Qqr(r, orderR, &core.Options{SortMode: core.SortFull})
			return err
		})
		if err != nil {
			return err
		}
		qqrOpt, err := timeIt(func() error {
			_, err := core.Qqr(r, orderR, &core.Options{SortMode: core.SortOptimized})
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12d  %s  %s  %s  %s\n",
			k, secs(addFull), secs(addOpt), secs(qqrFull), secs(qqrOpt))
	}
	return nil
}

func init() {
	register(Experiment{
		ID:     "fig13a",
		Title:  "Figure 13a: handling contextual information, 100K tuples, 200-1000 order attrs",
		Scaled: "10K tuples (paper: 100K)",
		Run: func(w io.Writer, quick bool) error {
			counts := []int{200, 400, 600, 800, 1000}
			rows := 10000
			if quick {
				counts = []int{200, 600}
				rows = 2000
			}
			return runFig13(w, rows, counts)
		},
	})
	register(Experiment{
		ID:     "fig13b",
		Title:  "Figure 13b: handling contextual information, 1M tuples, 20-100 order attrs",
		Scaled: "100K tuples (paper: 1M)",
		Run: func(w io.Writer, quick bool) error {
			counts := []int{20, 40, 60, 80, 100}
			rows := 100000
			if quick {
				counts = []int{20, 60}
				rows = 20000
			}
			return runFig13(w, rows, counts)
		},
	})
}

// --- Table 4: add over wide relations --------------------------------------

func init() {
	register(Experiment{
		ID:     "tab4",
		Title:  "Table 4: add over wide relations (1000 tuples, 1K-10K attributes)",
		Scaled: "unscaled",
		Run: func(w io.Writer, quick bool) error {
			widths := []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
			if quick {
				widths = []int{1000, 3000}
			}
			fmt.Fprintln(w, "#attr  seconds")
			for _, k := range widths {
				r := dataset.Uniform(1000, k, 300+int64(k))
				s := dataset.Uniform(1000, k, 400+int64(k))
				s, err := s.Rename(map[string]string{"k": "k2"})
				if err != nil {
					return err
				}
				d, err := timeIt(func() error {
					_, err := core.Add(r, []string{"k"}, s, []string{"k2"},
						&core.Options{SortMode: core.SortOptimized})
					return err
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%5d  %s\n", k, secs(d))
			}
			return nil
		},
	})
}

// --- Table 5: add over sparse relations -------------------------------------

func init() {
	register(Experiment{
		ID:     "tab5",
		Title:  "Table 5: add over sparse relations (5M tuples x 10 attrs, 0-100% zeros)",
		Scaled: "1M tuples (paper: 5M)",
		Run: func(w io.Writer, quick bool) error {
			rows := 1000000
			fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
			if quick {
				rows = 100000
				fracs = []float64{0, 0.5, 1.0}
			}
			fmt.Fprintln(w, "%zero  seconds")
			for _, z := range fracs {
				r := dataset.Sparse(rows, 10, z, 500)
				s := dataset.Sparse(rows, 10, z, 501)
				s, err := s.Rename(map[string]string{"k": "k2"})
				if err != nil {
					return err
				}
				d, err := timeIt(func() error {
					_, err := core.Add(r, []string{"k"}, s, []string{"k2"},
						&core.Options{Policy: core.PolicyBAT, SortMode: core.SortOptimized})
					return err
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%5.0f  %s\n", z*100, secs(d))
			}
			return nil
		},
	})
}

// --- Table 6: qqr in R and RMA+ --------------------------------------------

// memoryBudget is the scaled equivalent of the paper's 98 GB machine
// (sizes here are 1/100 of the paper's). R fails when the data.frame, the
// matrix copy, and qr()'s working copies no longer fit (≈4× the matrix);
// RMA+ switches from the dense kernel to the BAT implementation when the
// delegated copy plus workspace exceed the budget (≈3.5× the matrix) —
// the paper's policy, §8.3. Both factors are calibrated so the fail/BAT
// pattern matches Table 6 cell for cell.
const memoryBudget = 980 << 20 // bytes

func init() {
	register(Experiment{
		ID:     "tab6",
		Title:  "Table 6: qqr runtimes in R and RMA+ (5M-100M tuples x 10-70 attrs)",
		Scaled: "rows /100: 50K, 500K, 1M (paper: 5M, 50M, 100M)",
		Run: func(w io.Writer, quick bool) error {
			rowSizes := []int{50000, 500000, 1000000}
			attrs := []int{10, 40, 70}
			if quick {
				rowSizes = []int{20000}
				attrs = []int{10, 40}
			}
			fmt.Fprintln(w, "tuples  attrs  R  RMA+  (seconds; fail = exceeds R's scaled memory)")
			for _, rows := range rowSizes {
				for _, k := range attrs {
					r := dataset.Uniform(rows, k, 600+int64(rows+k))
					matrixBytes := int64(rows) * int64(k) * 8
					// R needs the data.frame, the matrix copy, and
					// qr()'s working copies live at once.
					rCell := "fail"
					if 4*matrixBytes < memoryBudget {
						df := rsim.FromRelation(r)
						names := df.Names[1:]
						d, err := timeIt(func() error {
							m, err := df.ToMatrix(names)
							if err != nil {
								return err
							}
							// R's default qr() is single-threaded LINPACK.
							qr, err := linalg.NewQRSerial(m)
							if err != nil {
								return err
							}
							qr.Q()
							return nil
						})
						if err != nil {
							return err
						}
						rCell = secs(d)
					}
					// RMA+ delegates to the dense kernel while it fits,
					// otherwise switches to the BAT Gram-Schmidt.
					policy := core.PolicyDense
					if 7*matrixBytes >= 2*memoryBudget { // 3.5x
						policy = core.PolicyBAT
					}
					d, err := timeIt(func() error {
						_, err := core.Qqr(r, []string{"k"},
							&core.Options{Policy: policy, SortMode: core.SortOptimized})
						return err
					})
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%7d  %5d  %s  %s\n", rows, k, rCell, secs(d))
				}
			}
			return nil
		},
	})
}

// --- Table 7: add + selection, RMA+ vs SciDB -------------------------------

func init() {
	register(Experiment{
		ID:     "tab7",
		Title:  "Table 7: add followed by a selection — RMA+ vs SciDB (1M-15M tuples x 10)",
		Scaled: "rows /10: 100K-1.5M (paper: 1M-15M)",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{100000, 500000, 1000000, 1500000}
			if quick {
				sizes = []int{50000, 100000}
			}
			fmt.Fprintln(w, "tuples  RMA+  SciDB  (seconds)")
			for _, n := range sizes {
				r := dataset.Uniform(n, 10, 700+int64(n))
				s := dataset.Uniform(n, 10, 701+int64(n))
				s2, err := s.Rename(map[string]string{"k": "k2"})
				if err != nil {
					return err
				}
				dRMA, err := timeIt(func() error {
					sum, err := core.Add(r, []string{"k"}, s2, []string{"k2"},
						&core.Options{Policy: core.PolicyBAT, SortMode: core.SortOptimized})
					if err != nil {
						return err
					}
					pred, err := sum.FloatPred("a0000", func(v float64) bool { return v > 15000 })
					if err != nil {
						return err
					}
					sum.Select(nil, pred)
					return nil
				})
				if err != nil {
					return err
				}
				// SciDB: arrays are pre-loaded (load is not part of the
				// paper's measurement); add runs as an array join.
				ac := make([][]float64, 10)
				bc := make([][]float64, 10)
				for j := 0; j < 10; j++ {
					cr, _ := r.Cols[j+1].Floats()
					cs, _ := s.Cols[j+1].Floats()
					ac[j] = cr
					bc[j] = cs
				}
				arrA := arraydb.FromColumns(ac, 0)
				arrB := arraydb.FromColumns(bc, 0)
				dSciDB, err := timeIt(func() error {
					sum, err := arraydb.Add(arrA, arrB)
					if err != nil {
						return err
					}
					sum.Filter(func(v float64) bool { return v > 15000 })
					return nil
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%8d  %s  %s\n", n, secs(dRMA), secs(dSciDB))
			}
			return nil
		},
	})
}

// --- Figure 14: data transformation share -----------------------------------

// fig14Ops lists the operations of Figure 14 with runners per engine.
var fig14Ops = []string{"ADD", "EMU", "MMU", "QQR", "DSV", "VSV"}

func runFig14RMA(w io.Writer, rowSizes []int) error {
	fmt.Fprintln(w, "rows  ADD  EMU  MMU  QQR  DSV  VSV   (% of runtime spent transforming; 50 columns)")
	for _, rows := range rowSizes {
		r := dataset.Uniform(rows, 50, 800+int64(rows))
		s, err := dataset.Uniform(rows, 50, 801+int64(rows)).Rename(map[string]string{"k": "k2"})
		if err != nil {
			return err
		}
		sq := dataset.Uniform(50, 50, 802+int64(rows)) // right operand of MMU
		sq, err = sq.Rename(map[string]string{"k": "k3"})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d", rows)
		for _, op := range fig14Ops {
			st := &core.Stats{}
			opts := &core.Options{Policy: core.PolicyDense, SortMode: core.SortOptimized, Stats: st}
			var err error
			switch op {
			case "ADD":
				_, err = core.Add(r, []string{"k"}, s, []string{"k2"}, opts)
			case "EMU":
				_, err = core.Emu(r, []string{"k"}, s, []string{"k2"}, opts)
			case "MMU":
				_, err = core.Mmu(r, []string{"k"}, sq, []string{"k3"}, opts)
			case "QQR":
				_, err = core.Qqr(r, []string{"k"}, opts)
			case "DSV":
				_, err = core.Dsv(r, []string{"k"}, opts)
			case "VSV":
				_, err = core.Vsv(r, []string{"k"}, opts)
			}
			if err != nil {
				return err
			}
			// The paper's share excludes the query pipeline; ours
			// excludes context handling correspondingly.
			total := st.Transform + st.Kernel
			share := 0.0
			if total > 0 {
				share = float64(st.Transform) / float64(total) * 100
			}
			fmt.Fprintf(w, "  %3.0f", share)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig14R(w io.Writer, rowSizes []int) error {
	fmt.Fprintln(w, "rows  ADD  EMU  MMU  QQR  DSV  VSV   (% of runtime spent transforming; 50 columns)")
	for _, rows := range rowSizes {
		df := rsim.FromRelation(dataset.Uniform(rows, 50, 810+int64(rows)))
		df2 := rsim.FromRelation(dataset.Uniform(rows, 50, 811+int64(rows)))
		dfSq := rsim.FromRelation(dataset.Uniform(50, 50, 812+int64(rows)))
		names := df.Names[1:]
		fmt.Fprintf(w, "%6d", rows)
		for _, op := range fig14Ops {
			var transform, kernel time.Duration
			t0 := time.Now()
			m1, err := df.ToMatrix(names)
			if err != nil {
				return err
			}
			transform = time.Since(t0)
			switch op {
			case "ADD", "EMU":
				t0 = time.Now()
				mb, err := df2.ToMatrix(names)
				if err != nil {
					return err
				}
				transform += time.Since(t0)
				t1 := time.Now()
				var out *matrix.Matrix
				if op == "ADD" {
					out = matrix.Add(m1, mb)
				} else {
					out = matrix.EMU(m1, mb)
				}
				kernel = time.Since(t1)
				t2 := time.Now()
				rsim.FromMatrix(out, names)
				transform += time.Since(t2)
			case "MMU":
				t0 = time.Now()
				mb, err := dfSq.ToMatrix(names)
				if err != nil {
					return err
				}
				transform += time.Since(t0)
				t1 := time.Now()
				prod := linalg.MatMul(nil, m1, mb)
				kernel = time.Since(t1)
				t2 := time.Now()
				rsim.FromMatrix(prod, names)
				transform += time.Since(t2)
			case "QQR":
				t1 := time.Now()
				q, err := linalg.QQR(nil, m1)
				if err != nil {
					return err
				}
				kernel = time.Since(t1)
				t2 := time.Now()
				rsim.FromMatrix(q, names)
				transform += time.Since(t2)
			case "DSV":
				t1 := time.Now()
				sv, err := linalg.SingularValues(nil, m1)
				if err != nil {
					return err
				}
				kernel = time.Since(t1)
				t2 := time.Now()
				_ = sv
				transform += time.Since(t2)
			case "VSV":
				t1 := time.Now()
				d, err := linalg.NewSVD(nil, m1)
				if err != nil {
					return err
				}
				v := d.FullV()
				kernel = time.Since(t1)
				t2 := time.Now()
				rsim.FromMatrix(v, names)
				transform += time.Since(t2)
			}
			share := 0.0
			if transform+kernel > 0 {
				share = float64(transform) / float64(transform+kernel) * 100
			}
			fmt.Fprintf(w, "  %3.0f", share)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func init() {
	register(Experiment{
		ID:     "fig14a",
		Title:  "Figure 14a: data transformation share in R (data.frame <-> matrix)",
		Scaled: "unscaled (100K-500K rows x 50 cols)",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{100000, 300000, 500000}
			if quick {
				sizes = []int{50000}
			}
			return runFig14R(w, sizes)
		},
	})
	register(Experiment{
		ID:     "fig14b",
		Title:  "Figure 14b: data transformation share in RMA+ (BATs <-> dense array)",
		Scaled: "unscaled (100K-500K rows x 50 cols)",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{100000, 300000, 500000}
			if quick {
				sizes = []int{50000}
			}
			return runFig14RMA(w, sizes)
		},
	})
}
