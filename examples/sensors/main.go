// Sensors: the weather relation that runs through the paper's Figures 2,
// 4, 9 and 10 — a time-ordered sensor relation over which transposition,
// QR decomposition, and singular vectors are computed, demonstrating how
// origins (row and column contextual information) survive every
// operation, including a double transpose that reconstructs the relation.
package main

import (
	"fmt"
	"log"

	"repro/rma"
)

func main() {
	db := rma.NewDB()
	db.MustExec(`
CREATE TABLE r (T VARCHAR(3), H DOUBLE, W DOUBLE);
INSERT INTO r VALUES ('5am',1,3), ('8am',8,5), ('7am',6,7), ('6am',1,4);
`)
	fmt.Println("r — humidity and wind by time of day:")
	fmt.Println(db.MustExec(`SELECT * FROM r`))

	// Figure 4b: transpose. The C attribute records which application
	// attribute each row came from; the columns are named by the sorted
	// times (the column cast ▽T).
	tra, err := db.Query(`SELECT * FROM TRA(r BY T)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TRA(r BY T):")
	fmt.Println(tra)

	// Figure 10: transposing again reconstructs r ordered by T; no
	// contextual information was lost in between.
	back, err := db.Query(`SELECT * FROM TRA(TRA(r BY T) BY C)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TRA(TRA(r BY T) BY C) — the round trip:")
	fmt.Println(back)

	// Figure 4a: the Q factor of the QR decomposition keeps the times as
	// row origins.
	qqr, err := db.Query(`SELECT * FROM QQR(r BY T)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("QQR(r BY T):")
	fmt.Println(qqr)

	// Figure 9 (p2): the left singular vectors; rows and columns are both
	// identified by times (shape type (r1,r1)).
	usv, err := db.Query(`SELECT * FROM USV(r BY T)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("USV(r BY T):")
	fmt.Println(usv)

	// Shape (1,1): the rank of the application part, with the operation
	// name as column origin.
	rnk, err := db.Query(`SELECT * FROM RNK(r BY T)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RNK(r BY T):")
	fmt.Println(rnk)
}
