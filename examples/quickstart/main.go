// Quickstart: the introductory example of the paper. A rating relation
// stores users and their ratings for three films; the SQL extension makes
// matrix inversion available directly in the FROM clause, and the result
// is an ordinary relation whose contextual information (user names,
// film titles) identifies every cell.
package main

import (
	"fmt"
	"log"

	"repro/rma"
)

func main() {
	db := rma.NewDB()
	db.MustExec(`
CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES
  ('Ann', 2.0, 1.5, 0.5),
  ('Tom', 0.0, 0.0, 1.5),
  ('Jan', 1.0, 4.0, 1.0);
`)

	fmt.Println("rating:")
	res := db.MustExec(`SELECT * FROM rating`)
	fmt.Println(res)

	// The paper's introductory query: order the relation by Usr and
	// invert the matrix formed by the numeric columns.
	inv, err := db.Query(`SELECT * FROM INV(rating BY Usr)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SELECT * FROM INV(rating BY Usr):")
	fmt.Println(inv)

	// RMA is closed: the result is a relation, so it joins, filters, and
	// feeds further matrix operations. Multiplying back yields identity.
	id, err := db.Query(`
SELECT * FROM MMU(rating BY Usr, INV(rating BY Usr) BY Usr)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MMU(rating, INV(rating)) — the identity, with origins:")
	fmt.Println(id)
}
