// Trips: the paper's §8.6(1) workload on a BIXI-like dataset — ordinary
// linear regression between trip distance and duration, with a relational
// preparation phase (aggregate, filter frequent routes, join stations,
// compute distances) followed by the OLS normal equations expressed in
// RMA: MMU(INV(CPD(A,A)), CPD(A,V)).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/rma"
)

func main() {
	ctx := exec.Default()
	trips := dataset.Trips(200000, 80, 42)
	stations := dataset.Stations(80, 42)

	// Relational preparation: frequent (start, end) routes with their
	// average duration.
	routes, err := rel.GroupBy(ctx, trips,
		[]string{"start_station", "end_station"},
		[]rel.AggSpec{
			{Func: rel.Count, As: "n"},
			{Func: rel.Avg, Attr: "duration", As: "avg_dur"},
		})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := routes.FloatPred("n", func(v float64) bool { return v >= 50 })
	if err != nil {
		log.Fatal(err)
	}
	frequent := routes.Select(ctx, pred)
	fmt.Printf("%d routes ridden at least 50 times (of %d total)\n",
		frequent.NumRows(), routes.NumRows())

	// Join both endpoints with the station coordinates.
	withStart, err := rel.HashJoin(ctx, frequent, stations,
		[]string{"start_station"}, []string{"code"}, rel.Inner)
	if err != nil {
		log.Fatal(err)
	}
	withStart, _ = withStart.Drop("name")
	withStart, _ = withStart.Rename(map[string]string{"lat": "lat1", "lon": "lon1"})
	both, err := rel.HashJoin(ctx, withStart, stations,
		[]string{"end_station"}, []string{"code"}, rel.Inner)
	if err != nil {
		log.Fatal(err)
	}
	both, _ = both.Drop("name")

	// Distance per route (a scalar expression over columns).
	lat1c, _ := both.Col("lat1")
	lon1c, _ := both.Col("lon1")
	lat2c, _ := both.Col("lat")
	lon2c, _ := both.Col("lon")
	lat1, _ := lat1c.Floats()
	lon1, _ := lon1c.Floats()
	lat2, _ := lat2c.Floats()
	lon2, _ := lon2c.Floats()
	n := both.NumRows()
	route := make([]int64, n)
	ones := make([]float64, n)
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dy := (lat1[i] - lat2[i]) * 111.0 // km per degree latitude
		dx := (lon1[i] - lon2[i]) * 78.8  // km per degree longitude at 45°N
		route[i] = int64(i)
		ones[i] = 1
		dist[i] = math.Sqrt(dx*dx + dy*dy)
	}
	durc, _ := both.Col("avg_dur")
	dur, _ := durc.Floats()

	// The coefficient attribute names must sort like the schema order —
	// inv orders its input rows by C — so the intercept is b0 and the
	// distance coefficient b1 (the paper's Figure 6 pipeline relies on
	// the same property: B, H, N sort alphabetically).
	a, err := rma.NewRelation("A", rma.Schema{
		{Name: "route", Type: rma.Int},
		{Name: "b0", Type: rma.Float},
		{Name: "b1", Type: rma.Float},
	}, []any{route, ones, dist})
	if err != nil {
		log.Fatal(err)
	}
	v, err := rma.NewRelation("V", rma.Schema{
		{Name: "route", Type: rma.Int},
		{Name: "dur", Type: rma.Float},
	}, []any{route, dur})
	if err != nil {
		log.Fatal(err)
	}

	// OLS in RMA: beta = MMU(INV(CPD(A,A)), CPD(A,V)).
	ata, err := rma.Cpd(a, []string{"route"}, a, []string{"route"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	// cpd returns row origins in attribute C; reuse it as the order
	// schema of the inversion — the algebra is closed.
	inv, err := rma.Inv(ata, []string{"C"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	atv, err := rma.Cpd(a, []string{"route"}, v, []string{"route"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	beta, err := rma.Mmu(inv, []string{"C"}, atv, []string{"C"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOLS coefficients (duration ≈ intercept + slope·distance):")
	fmt.Println(beta)

	for i := 0; i < beta.NumRows(); i++ {
		switch beta.Value(i, 0).S {
		case "b0":
			fmt.Printf("intercept: %8.2f s\n", beta.Value(i, 1).F)
		case "b1":
			fmt.Printf("slope:     %8.2f s/km\n", beta.Value(i, 1).F)
		}
	}
}
