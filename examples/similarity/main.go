// Similarity: the complete mixed workload of the paper's Section 5.
// Given users, films, and ratings, compute how similar each of director
// Lee's films is to any other film, based on the covariance of ratings by
// California users. The pipeline interleaves relational operations
// (selection, join, aggregation, rename) with relational matrix
// operations (sub, tra, mmu) — the workload class RMA was designed for.
package main

import (
	"fmt"
	"log"

	"repro/rma"
)

func main() {
	db := rma.NewDB()
	db.MustExec(`
CREATE TABLE users (Usr VARCHAR(20), State VARCHAR(2), YoB INT);
INSERT INTO users VALUES ('Ann','CA',1980), ('Tom','FL',1965), ('Jan','CA',1970);

CREATE TABLE film (Title VARCHAR(20), RelY INT, Director VARCHAR(20));
INSERT INTO film VALUES ('Heat',1995,'Lee'), ('Balto',1995,'Lee'), ('Net',1995,'Smith');

CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0);
`)

	// w1: ratings of California users (selection + join).
	db.MustExec(`
CREATE TABLE w1 (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO w1 SELECT r.Usr, r.Balto, r.Heat, r.Net
FROM users u JOIN rating r ON u.Usr = r.Usr WHERE u.State = 'CA';`)
	fmt.Println("w1 — CA ratings:")
	fmt.Println(db.MustExec(`SELECT * FROM w1`))

	// w2/w3: center the rating columns (aggregation + sub). The second
	// argument of SUB replicates the column means per user; its order
	// schema is renamed to keep the order schemas disjoint (the paper's
	// ρV step in Figure 6).
	db.MustExec(`
CREATE TABLE w3 (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO w3 SELECT s.Usr, s.Balto, s.Heat, s.Net FROM (
  SELECT * FROM SUB(w1 BY Usr, (
     SELECT t.V AS V2, a.ab AS Balto, a.ah AS Heat, a.an AS Net
     FROM (SELECT Usr AS V FROM w1) t
     CROSS JOIN (SELECT AVG(Balto) AS ab, AVG(Heat) AS ah, AVG(Net) AS an FROM w1) a
  ) BY V2)
) s;`)
	fmt.Println("w3 — centered ratings:")
	fmt.Println(db.MustExec(`SELECT * FROM w3`))

	// w4–w7: covariance via transpose + matrix multiplication, scaled by
	// 1/(M-1). This is the paper's Section 7.2 SQL translation verbatim.
	db.MustExec(`
CREATE TABLE w7 (C VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO w7 SELECT C, Balto/(M-1) AS Balto, Heat/(M-1) AS Heat, Net/(M-1) AS Net
FROM MMU(TRA(w3 BY Usr) BY C, w3 BY Usr) AS w5
CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t;`)
	fmt.Println("w7 — covariance matrix of the ratings:")
	fmt.Println(db.MustExec(`SELECT * FROM w7`))

	// w8: join with films and select Lee's films — the covariance rows
	// keep their origins (film titles in C), so the join just works.
	res, err := db.Query(`
SELECT f.Title, w7.Balto, w7.Heat, w7.Net
FROM w7 JOIN film f ON w7.C = f.Title
WHERE f.Director = 'Lee' ORDER BY f.Title`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("w8 — similarity of Lee's films to all films:")
	fmt.Println(res)
}
