// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure, §8) at benchmark-friendly sizes, plus ablations of the
// design choices DESIGN.md calls out. cmd/rmabench prints the full
// paper-style series; these testing.B entry points make every experiment
// runnable through `go test -bench`.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/bat"
	"repro/internal/bench"
	"repro/internal/competitor/arraydb"
	"repro/internal/competitor/rsim"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// --- Figure 13: maintaining contextual information --------------------------

func BenchmarkFig13ContextMaintenance(b *testing.B) {
	rows, orderCols := 5000, 100
	r, orderR := dataset.WideOrder(rows, orderCols, 1)
	s, orderS := dataset.WideOrder(rows, orderCols, 2)
	ren := make(map[string]string, len(orderS))
	orderS2 := make([]string, len(orderS))
	for i, n := range orderS {
		ren[n] = "p" + n
		orderS2[i] = "p" + n
	}
	s2, err := s.Rename(ren)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"add-full-sort", func() error {
			_, err := core.Add(r, orderR, s2, orderS2, &core.Options{SortMode: core.SortFull})
			return err
		}},
		{"add-relative-sort", func() error {
			_, err := core.Add(r, orderR, s2, orderS2, &core.Options{SortMode: core.SortOptimized})
			return err
		}},
		{"qqr-full-sort", func() error {
			_, err := core.Qqr(r, orderR, &core.Options{SortMode: core.SortFull})
			return err
		}},
		{"qqr-wo-sort", func() error {
			_, err := core.Qqr(r, orderR, &core.Options{SortMode: core.SortOptimized})
			return err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 4: add over wide relations ---------------------------------------

func BenchmarkTable4WideAdd(b *testing.B) {
	r := dataset.Uniform(1000, 1000, 3)
	s, err := dataset.Uniform(1000, 1000, 4).Rename(map[string]string{"k": "k2"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Add(r, []string{"k"}, s, []string{"k2"},
			&core.Options{SortMode: core.SortOptimized}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: add over sparse relations --------------------------------------

func BenchmarkTable5SparseAdd(b *testing.B) {
	cases := []struct {
		name  string
		zeros float64
	}{
		{"dense", 0},
		{"half-zero", 0.5},
		{"ninety-pct-zero", 0.9},
	}
	for _, c := range cases {
		r := dataset.Sparse(200000, 10, c.zeros, 5)
		s, err := dataset.Sparse(200000, 10, c.zeros, 6).Rename(map[string]string{"k": "k2"})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Add(r, []string{"k"}, s, []string{"k2"},
					&core.Options{Policy: core.PolicyBAT, SortMode: core.SortOptimized}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 6: qqr in R vs RMA+ ------------------------------------------------

func BenchmarkTable6QQR(b *testing.B) {
	r := dataset.Uniform(20000, 20, 7)
	df := rsim.FromRelation(r)
	names := df.Names[1:]
	b.Run("R-single-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := df.ToMatrix(names)
			if err != nil {
				b.Fatal(err)
			}
			qr, err := linalg.NewQRSerial(m)
			if err != nil {
				b.Fatal(err)
			}
			qr.Q()
		}
	})
	b.Run("RMA-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Qqr(r, []string{"k"},
				&core.Options{Policy: core.PolicyDense, SortMode: core.SortOptimized}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RMA-bat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Qqr(r, []string{"k"},
				&core.Options{Policy: core.PolicyBAT, SortMode: core.SortOptimized}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 7: add + selection vs SciDB -----------------------------------------

func BenchmarkTable7AddSelect(b *testing.B) {
	n := 100000
	r := dataset.Uniform(n, 10, 8)
	s := dataset.Uniform(n, 10, 9)
	s2, err := s.Rename(map[string]string{"k": "k2"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("RMA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum, err := core.Add(r, []string{"k"}, s2, []string{"k2"},
				&core.Options{Policy: core.PolicyBAT, SortMode: core.SortOptimized})
			if err != nil {
				b.Fatal(err)
			}
			pred, err := sum.FloatPred("a0000", func(v float64) bool { return v > 15000 })
			if err != nil {
				b.Fatal(err)
			}
			sum.Select(nil, pred)
		}
	})
	ac := make([][]float64, 10)
	bc := make([][]float64, 10)
	for j := 0; j < 10; j++ {
		ac[j], _ = r.Cols[j+1].Floats()
		bc[j], _ = s.Cols[j+1].Floats()
	}
	arrA := arraydb.FromColumns(ac, 0)
	arrB := arraydb.FromColumns(bc, 0)
	b.Run("SciDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum, err := arraydb.Add(arrA, arrB)
			if err != nil {
				b.Fatal(err)
			}
			sum.Filter(func(v float64) bool { return v > 15000 })
		}
	})
}

// --- Figure 14: data transformation share ---------------------------------------

func BenchmarkFig14TransformShare(b *testing.B) {
	r := dataset.Uniform(50000, 50, 10)
	s, err := dataset.Uniform(50000, 50, 11).Rename(map[string]string{"k": "k2"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ADD-dense-policy", func(b *testing.B) {
		var share float64
		for i := 0; i < b.N; i++ {
			st := &core.Stats{}
			if _, err := core.Add(r, []string{"k"}, s, []string{"k2"},
				&core.Options{Policy: core.PolicyDense, SortMode: core.SortOptimized, Stats: st}); err != nil {
				b.Fatal(err)
			}
			share = float64(st.Transform) / float64(st.Transform+st.Kernel)
		}
		b.ReportMetric(share*100, "%transform")
	})
	b.Run("QQR-dense-policy", func(b *testing.B) {
		var share float64
		for i := 0; i < b.N; i++ {
			st := &core.Stats{}
			if _, err := core.Qqr(r, []string{"k"},
				&core.Options{Policy: core.PolicyDense, SortMode: core.SortOptimized, Stats: st}); err != nil {
				b.Fatal(err)
			}
			share = float64(st.Transform) / float64(st.Transform+st.Kernel)
		}
		b.ReportMetric(share*100, "%transform")
	})
}

// --- Figures 15-18: the four mixed workloads --------------------------------------

func BenchmarkFig15TripsOLS(b *testing.B) {
	trips := dataset.Trips(50000, 80, 12)
	stations := dataset.Stations(80, 12)
	b.Run("RMA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripsRMA(trips, stations, core.PolicyAuto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AIDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripsAIDA(trips, stations); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MADlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripsMADlib(trips, stations); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig16Journeys(b *testing.B) {
	trips := dataset.Trips(60000, 30, 13)
	stations := dataset.Stations(30, 13)
	const k = 3
	b.Run("RMA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.JourneysRMA(trips, stations, k, core.PolicyAuto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AIDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.JourneysAIDA(trips, stations, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.JourneysR(trips, stations, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MADlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.JourneysMADlib(trips, stations, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig17Covariance(b *testing.B) {
	pubs := dataset.Publications(5000, 40, 14)
	ranking := dataset.Rankings(40, 14)
	b.Run("RMA-MKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.CovarianceRMA(pubs, ranking, core.PolicyDense); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RMA-BAT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.CovarianceRMA(pubs, ranking, core.PolicyBAT); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.CovarianceR(pubs, ranking); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AIDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.CovarianceAIDA(pubs, ranking); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MADlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.CovarianceMADlib(pubs, ranking); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig18TripCount(b *testing.B) {
	y1 := dataset.RiderTripCounts(100000, 2016)
	y2 := dataset.RiderTripCounts(100000, 2017)
	b.Run("RMA-BAT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripCountRMA(y1, y2, core.PolicyBAT); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RMA-MKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripCountRMA(y1, y2, core.PolicyDense); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripCountR(y1, y2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AIDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripCountAIDA(y1, y2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MADlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.TripCountMADlib(y1, y2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------------

// BenchmarkAblationMatMul compares the naive triple loop against the
// blocked serial and blocked parallel kernels.
func BenchmarkAblationMatMul(b *testing.B) {
	n := 256
	x := matrix.New(n, n)
	y := matrix.New(n, n)
	for i := range x.Data {
		x.Data[i] = float64(i % 97)
		y.Data[i] = float64(i % 89)
	}
	b.Run("naive", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			out := matrix.New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var s float64
					for l := 0; l < n; l++ {
						s += x.At(i, l) * y.At(l, j)
					}
					out.Set(i, j, s)
				}
			}
		}
	})
	b.Run("blocked-parallel", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			linalg.MatMul(nil, x, y)
		}
	})
}

// BenchmarkAblationSYRK compares the symmetric rank-k fast path against
// the generic cross product for the covariance pattern.
func BenchmarkAblationSYRK(b *testing.B) {
	a := matrix.New(20000, 60)
	for i := range a.Data {
		a.Data[i] = float64(i%101) / 7
	}
	b.Run("syrk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.SYRK(nil, a)
		}
	})
	b.Run("generic-cpd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.CrossProduct(nil, a, a)
		}
	})
}

// BenchmarkAblationParallelKernels isolates the chunked parallel driver
// and the arena: the same BAT kernels at worker budgets 1 and GOMAXPROCS,
// with and without releasing outputs back to the arena. On a single-core
// runner the two budgets coincide (the driver stays serial); the arena
// contrast is visible everywhere via allocs/op.
func BenchmarkAblationParallelKernels(b *testing.B) {
	n := 1 << 20
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 97)
		ys[i] = float64(i % 89)
	}
	x, y := bat.FromFloats(xs), bat.FromFloats(ys)
	budgets := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = restore the GOMAXPROCS default
	}
	for _, bud := range budgets {
		workers := bud.workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		prev := bat.SetParallelism(workers)
		b.Run("add-"+bud.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bat.Release(nil, bat.Add(nil, x, y))
			}
		})
		b.Run("dot-"+bud.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bat.Dot(nil, x, y)
			}
		})
		bat.SetParallelism(prev)
	}
	b.Run("add-no-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bat.Add(nil, x, y)
		}
	})
}

// BenchmarkAblationSparseAdd isolates the zero-suppressed add against the
// dense add at equal logical size.
func BenchmarkAblationSparseAdd(b *testing.B) {
	n := 1 << 20
	dense1 := make([]float64, n)
	dense2 := make([]float64, n)
	for i := 0; i < n; i += 10 { // 10% non-zero
		dense1[i] = float64(i)
		dense2[(i+5)%n] = float64(i)
	}
	d1, d2 := bat.FromFloats(dense1), bat.FromFloats(dense2)
	s1 := bat.FromSparse(bat.Compress(dense1))
	s2 := bat.FromSparse(bat.Compress(dense2))
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bat.Add(nil, d1, d2)
		}
	})
	b.Run("zero-suppressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bat.Add(nil, s1, s2)
		}
	})
}

// BenchmarkAblationHashJoin measures the columnar hash join that both the
// RMA+ and AIDA preparation phases rely on.
func BenchmarkAblationHashJoin(b *testing.B) {
	trips := dataset.Trips(100000, 80, 15)
	stations := dataset.Stations(80, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.HashJoin(nil, trips, stations,
			[]string{"start_station"}, []string{"code"}, rel.Inner); err != nil {
			b.Fatal(err)
		}
	}
}
